//! # fairdms-service
//!
//! The deployment layer of the fairDMS reproduction: the paper presents
//! fairDMS as a *service platform* (Figs 3–5) with user-plane operations
//! invoked by experiment clients and system-plane maintenance running in
//! the background. This crate packages the [`fairdms_core`] workflow
//! behind a concurrent request/reply server:
//!
//! * [`api`] — the typed request/response vocabulary and error model;
//! * [`server`] — [`server::DmsServer`], an actor-style worker owning all
//!   service state, with bounded-queue admission (backpressure), a
//!   clone-able blocking [`server::DmsClient`], and the certainty-triggered
//!   system-plane retrain loop;
//! * [`metrics`] — lock-free per-operation latency/throughput statistics.
//!
//! ```no_run
//! use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
//! use fairdms_core::fairds::{FairDS, FairDsConfig};
//! use fairdms_core::fairms::ModelManager;
//! use fairdms_core::models::ArchSpec;
//! use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
//! use fairdms_service::server::{DmsServer, DmsServerConfig};
//!
//! let side = 8;
//! let embedder = AutoencoderEmbedder::new(side * side, 32, 8, 0);
//! let fairds = FairDS::in_memory(Box::new(embedder), FairDsConfig::default());
//! let trainer = RapidTrainer::new(
//!     fairds,
//!     ModelManager::default(),
//!     RapidTrainerConfig::new(ArchSpec::BraggNN { patch: side }, side),
//! );
//! let (client, handle) =
//!     DmsServer::spawn(trainer, Box::new(|_| vec![0.5, 0.5]), DmsServerConfig::default());
//! // ... client.train_system(...), client.update_model(...), ...
//! drop(client);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod metrics;
pub mod server;

pub use api::{RankedModels, Reply, Request, ServiceError, ServiceResult};
pub use metrics::{Metrics, MetricsSnapshot, OpSnapshot};
pub use server::{DmsClient, DmsServer, DmsServerConfig, FallbackLabeler, ServerHandle};
