//! # fairdms-service
//!
//! The deployment layer of the fairDMS reproduction: the paper presents
//! fairDMS as a *service platform* (Figs 3–5) with user-plane operations
//! invoked by experiment clients and system-plane maintenance running in
//! the background. This crate packages the [`fairdms_core`] workflow
//! behind a concurrent request/reply server with a **split user plane**:
//!
//! * [`api`] — the typed request/response vocabulary, error model, and the
//!   read/write classification ([`api::Request::is_read_only`]);
//! * [`swap`] — [`swap::SnapshotCell`], the lock-free atomically-swappable
//!   `Arc` cell snapshot publication rides on;
//! * [`server`] — [`server::DmsServer`]: a thin mutation actor
//!   (bounded-queue admission, O(ms) operations only), a **background
//!   training executor** running cancellable, supersedable training jobs
//!   (`UpdateModel` fine-tunes, certainty-triggered retrains) whose
//!   results are version-fenced before publication, plus an N-thread read
//!   pool serving `DatasetPdf` / `LookupMatching` / `Recommend` /
//!   `FetchModel` / `Certainty` from immutable snapshots — so neither
//!   reads *nor ingest* ever stall behind a training run;
//! * [`metrics`] — lock-free per-operation queue-wait/run-time statistics
//!   and training-job counters, served to clients without ever entering
//!   an admission queue;
//! * [`net`] — the wire plane (DESIGN.md §13): a pipelined TCP/UDS
//!   listener over the same deployment ([`net::NetServer`]) and the
//!   matching socket clients ([`net::DmsTcpClient`],
//!   [`net::PipelinedClient`]);
//! * [`multi`] — the tenant plane (DESIGN.md §14): [`multi::MultiDms`]
//!   hosts N isolated deployments behind one process, sharing one
//!   fair-scheduled training pool and one wire listener, with per-tenant
//!   admission quotas.
//!
//! ```no_run
//! use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
//! use fairdms_core::fairds::{FairDS, FairDsConfig};
//! use fairdms_core::fairms::ModelManager;
//! use fairdms_core::models::ArchSpec;
//! use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
//! use fairdms_service::server::{DmsServer, DmsServerConfig};
//!
//! let side = 8;
//! let embedder = AutoencoderEmbedder::new(side * side, 32, 8, 0);
//! let fairds = FairDS::in_memory(Box::new(embedder), FairDsConfig::default());
//! let trainer = RapidTrainer::new(
//!     fairds,
//!     ModelManager::default(),
//!     RapidTrainerConfig::new(ArchSpec::BraggNN { patch: side }, side),
//! );
//! let cfg = DmsServerConfig {
//!     read_pool_size: 4, // 0 ⇒ sized from available parallelism
//!     ..DmsServerConfig::default()
//! };
//! let (client, handle) = DmsServer::spawn(trainer, Box::new(|_| vec![0.5, 0.5]), cfg);
//! // Mutations serialize through the actor...
//! // client.train_system(...)?; client.update_model(...)?;
//! // ...while reads are served concurrently from published snapshots:
//! // client.dataset_pdf(...)?; client.recommend(...)?; client.metrics()?;
//! drop(client);
//! handle.shutdown();
//! ```
//!
//! `DESIGN.md` §6 documents the snapshot-publication architecture and its
//! consistency guarantees; §7 documents the write-plane split (actor vs.
//! training executor, epoch-boundary cancellation, version fencing).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod api;
pub mod metrics;
pub mod multi;
pub mod net;
pub mod server;
// The left-right SnapshotCell is the one sanctioned unsafe island in the
// workspace: every block carries a SAFETY comment (enforced by repolint)
// and the protocol is model-checked in tests/model_swap.rs.
#[allow(unsafe_code)]
pub mod swap;

pub use api::{RankedModels, Reply, Request, ServiceError, ServiceResult, TenantId};
pub use metrics::{Metrics, MetricsSnapshot, NetStats, OpSnapshot};
pub use multi::{MultiDms, MultiDmsBuilder, TenantSpec};
pub use net::{
    DmsTcpClient, NetServer, NetServerConfig, NetServerHandle, PipelinedClient, TenantRouter,
};
pub use server::{
    DmsClient, DmsServer, DmsServerConfig, FallbackLabeler, ServerHandle, ServiceView,
};
pub use swap::SnapshotCell;
