//! Request/response vocabulary of the fairDMS service.
//!
//! The paper (Fig 5) divides fairDMS into *user plane* operations invoked
//! by clients (query labeled data, request a model recommendation, update
//! a model) and *system plane* operations executed in the background
//! (training the embedding/clustering models, refreshing the store,
//! re-indexing the Zoo). [`Request`] enumerates the user-plane surface; the
//! system plane runs inside the server, triggered by the certainty monitor.
//!
//! Requests are further classified by [`Request::is_read_only`]: read-only
//! operations are served off the actor thread by a pool of snapshot-reading
//! workers and never queue behind training, while mutating operations
//! serialize through the actor (see [`crate::server`] and DESIGN.md §6).

use fairdms_core::embedding::EmbedTrainConfig;
use fairdms_core::fairds::PseudoLabelStats;
use fairdms_core::workflow::UpdateReport;
use fairdms_datastore::Document;
use fairdms_tensor::Tensor;

/// Identifier assigned to every accepted request (monotonic per server).
pub type RequestId = u64;

/// Identifier of one tenant — one isolated experiment deployment — inside
/// a shared service process (DESIGN.md §14). Carried on every wire frame;
/// single-tenant deployments are tenant [`fairdms_flows::jobs::DEFAULT_TENANT`].
pub type TenantId = fairdms_flows::jobs::TenantId;

/// Errors surfaced to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The server was asked to operate before its system plane was trained.
    NotReady,
    /// A request referenced a zoo entry that does not exist.
    UnknownModel(usize),
    /// The request payload failed validation (shape mismatch, empty input…).
    Invalid(String),
    /// The server is shutting down and no longer accepts work.
    Unavailable,
    /// A background training job did not publish: either a newer trigger
    /// for the same plane cancelled it at an epoch boundary, or it
    /// completed against a system plane that had been replaced mid-flight
    /// and was rejected by the version fence. The request can be retried
    /// against the current state; nothing was registered.
    Superseded,
    /// The wire plane's connection limit was reached: the server accepted
    /// the socket, answered this error, and closed it without dropping a
    /// byte on the floor (DESIGN.md §13). Retry after backing off, or
    /// against another endpoint.
    Busy,
    /// The wire protocol broke down between a network client and the
    /// server: a frame failed to decode, the transport died mid-message,
    /// or the peer spoke something that is not the fairDMS framing. The
    /// connection this happened on is no longer usable. Never produced by
    /// the in-process client.
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NotReady => write!(f, "system plane not trained"),
            ServiceError::UnknownModel(id) => write!(f, "unknown zoo model {id}"),
            ServiceError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServiceError::Unavailable => write!(f, "service unavailable"),
            ServiceError::Superseded => {
                write!(f, "training job superseded by a newer trigger")
            }
            ServiceError::Busy => write!(f, "connection limit reached"),
            ServiceError::Protocol(msg) => write!(f, "wire protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// User-plane requests.
#[derive(Debug)]
pub enum Request {
    /// System-plane bootstrap: fit embedding + clustering on a historical
    /// corpus. Returns [`Reply::SystemTrained`].
    TrainSystem {
        /// Flattened historical images `[N, side²]`.
        images: Tensor,
        /// Embedding training hyper-parameters.
        embed_cfg: EmbedTrainConfig,
    },
    /// Store labeled samples (embedded + cluster-indexed on ingest).
    IngestLabeled {
        /// Flattened images `[N, side²]`.
        images: Tensor,
        /// Matching labels `[N, L]`.
        labels: Tensor,
        /// Provenance scan index.
        scan: usize,
    },
    /// The cluster-occupancy PDF of a dataset.
    DatasetPdf {
        /// Flattened images.
        images: Tensor,
    },
    /// Pseudo-label a dataset with the server's fallback labeler.
    PseudoLabel {
        /// Flattened images.
        images: Tensor,
        /// Embedding-distance reuse threshold.
        threshold: f32,
    },
    /// PDF-matched retrieval of labeled historical documents.
    LookupMatching {
        /// Target cluster PDF (length must equal the fitted K).
        pdf: Vec<f64>,
        /// Number of documents to draw.
        count: usize,
    },
    /// Rank the model Zoo against a dataset PDF.
    Recommend {
        /// Input dataset PDF.
        pdf: Vec<f64>,
        /// `Some(k)` returns only the `k` lowest-divergence entries via
        /// the snapshot's partial-ranking path (pruned by the √JSD
        /// triangle inequality); `None` ranks the whole zoo.
        top_k: Option<usize>,
    },
    /// Full rapid-model-update (pseudo-label → recommend → train →
    /// register). Returns the new checkpoint and the timing report.
    UpdateModel {
        /// Flattened images of the new (unlabeled) dataset.
        images: Tensor,
        /// Provenance scan index.
        scan: usize,
    },
    /// Publish an externally trained model into the Zoo.
    PublishModel {
        /// Human-readable name.
        name: String,
        /// Serialized checkpoint ([`fairdms_nn::checkpoint`] format).
        checkpoint: Vec<u8>,
        /// Training-dataset PDF (the index key).
        pdf: Vec<f64>,
        /// Provenance scan index.
        scan: usize,
    },
    /// Fetch a checkpoint from the Zoo.
    FetchModel {
        /// Zoo id.
        zoo_id: usize,
    },
    /// Fuzzy-clustering certainty of a dataset under the current system
    /// models (the staleness signal).
    Certainty {
        /// Flattened images.
        images: Tensor,
    },
    /// Snapshot of the server's request metrics.
    Metrics,
}

impl Request {
    /// Whether the request only reads published state and can be served
    /// from an immutable snapshot, off the actor thread.
    ///
    /// `PseudoLabel` is *not* read-only even though it writes no service
    /// state: it drives the server's fallback labeler, an exclusive
    /// `FnMut`, so it serializes through the actor. `Metrics` is read-only
    /// (and [`crate::server::DmsClient::metrics`] skips the queue
    /// entirely — the registry is lock-free).
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            Request::DatasetPdf { .. }
                | Request::LookupMatching { .. }
                | Request::Recommend { .. }
                | Request::FetchModel { .. }
                | Request::Certainty { .. }
                | Request::Metrics
        )
    }

    /// Short operation label used by the metrics registry.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::TrainSystem { .. } => "train_system",
            Request::IngestLabeled { .. } => "ingest",
            Request::DatasetPdf { .. } => "pdf",
            Request::PseudoLabel { .. } => "pseudo_label",
            Request::LookupMatching { .. } => "lookup",
            Request::Recommend { .. } => "recommend",
            Request::UpdateModel { .. } => "update_model",
            Request::PublishModel { .. } => "publish",
            Request::FetchModel { .. } => "fetch",
            Request::Certainty { .. } => "certainty",
            Request::Metrics => "metrics",
        }
    }
}

/// A ranked zoo recommendation as returned over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedModels {
    /// `(zoo id, JSD)` ascending by divergence; empty when the zoo has no
    /// compatible entries.
    pub ranked: Vec<(usize, f64)>,
    /// Whether the best entry clears the manager's distance threshold.
    pub fine_tunable: bool,
}

/// Successful replies, one variant per request kind.
#[derive(Debug)]
pub enum Reply {
    /// System plane trained; carries the selected cluster count K.
    SystemTrained {
        /// Number of clusters fitted.
        k: usize,
    },
    /// Samples stored; carries the number ingested and whether the ingest
    /// triggered a system-plane retrain.
    Ingested {
        /// Documents written.
        count: usize,
        /// True when the certainty monitor fired and a system-plane
        /// retrain was *triggered*. With the background training executor
        /// (the default) the retrain completes asynchronously — poll
        /// `system_retrains` / the snapshot version for installation; in
        /// serialized mode (`training_pool_size: 0`) it has already
        /// completed when this reply arrives.
        retrained: bool,
    },
    /// Dataset PDF.
    Pdf(Vec<f64>),
    /// Pseudo-labels with reuse statistics.
    Labeled {
        /// `[N, L]` label matrix.
        labels: Tensor,
        /// Reuse/fallback counts.
        stats: PseudoLabelStats,
    },
    /// Retrieved documents.
    Documents(Vec<Document>),
    /// Zoo ranking.
    Ranked(RankedModels),
    /// Model update finished.
    Updated {
        /// Serialized checkpoint of the updated model.
        checkpoint: Vec<u8>,
        /// Timing/foundation report (the Fig 15 quantities).
        report: UpdateReport,
    },
    /// Model published under this zoo id.
    Published {
        /// Assigned zoo id.
        zoo_id: usize,
    },
    /// Checkpoint bytes for a fetch.
    Model {
        /// Serialized checkpoint.
        checkpoint: Vec<u8>,
        /// Training-set PDF stored with the entry.
        pdf: Vec<f64>,
    },
    /// Certainty in `[0, 1]`.
    Certainty(f64),
    /// Metrics snapshot.
    Metrics(crate::metrics::MetricsSnapshot),
}

/// What a client ultimately receives.
pub type ServiceResult = Result<Reply, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_are_distinct() {
        let reqs = [
            Request::Metrics,
            Request::Recommend {
                pdf: vec![],
                top_k: None,
            },
            Request::FetchModel { zoo_id: 0 },
            Request::LookupMatching {
                pdf: vec![],
                count: 0,
            },
        ];
        let names: std::collections::HashSet<_> = reqs.iter().map(|r| r.op_name()).collect();
        assert_eq!(names.len(), reqs.len());
    }

    #[test]
    fn errors_render_usefully() {
        assert!(ServiceError::UnknownModel(7).to_string().contains('7'));
        assert!(ServiceError::Invalid("x".into()).to_string().contains('x'));
        assert_eq!(
            ServiceError::NotReady.to_string(),
            "system plane not trained"
        );
    }
}
