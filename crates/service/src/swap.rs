//! A lock-free, atomically-swappable `Arc` cell (left-right technique).
//!
//! [`SnapshotCell`] hands the *current* snapshot to any number of reader
//! threads without a lock on the read path, while publishers replace it
//! with a single atomic swap of the active-slot index. This is the
//! left-right concurrency construction (Ramalhete & Correia): two slots,
//! readers announce themselves on the slot the `active` index points to,
//! and a publisher only ever writes the *inactive* slot after waiting for
//! its reader count to drain.
//!
//! ## Why the protocol is sound
//!
//! A reader (a) loads `active = i`, (b) increments `readers[i]`, then
//! (c) re-checks `active == i`. The cell value of slot `i` is cloned only
//! when the re-check passes.
//!
//! * Publishers mutate only the inactive slot (publisher-side exclusivity
//!   is guaranteed by `write_lock`), so `active == i` at (c) implies no
//!   publisher is writing slot `i` at that moment — `active` can only point
//!   at a fully-written slot, because the publisher's swap of `active` is
//!   its *last* store (`SeqCst`, so the write to the slot happens-before
//!   any reader that observes the new index).
//! * A publisher writes a slot only after observing `readers == 0` for it.
//!   Any reader that increments afterwards must fail its re-check (the
//!   slot being written is inactive and stays inactive until the write
//!   finishes), so it retries without touching the cell.
//! * A reader holds its `readers[i]` increment across the clone, so a
//!   *subsequent* publication targeting slot `i` waits until the clone is
//!   done.
//!
//! Reads are lock-free (two atomic RMWs, two loads, one `Arc` clone) and
//! never block behind a publisher; a publisher waits only for stragglers
//! mid-clone on the slot it wants to reuse, which is a bounded handful of
//! instructions.
//!
//! ## Verification
//!
//! This protocol is the flagship model-check target of the correctness
//! plane (DESIGN.md §11). The atomics and the value cell go through
//! `fairdms_check` wrappers — plain std operations in a default build;
//! under `--features check`, scheduler yield points feeding a vector-clock
//! race detector. `crates/service/tests/model_swap.rs` explores the
//! publish-vs-read interleavings exhaustively and proves the re-check is
//! load-bearing (deleting it yields a detected data race with a
//! replayable schedule).
//!
//! ## Memory-ordering audit (per site)
//!
//! All five atomic sites use `SeqCst`. `Acquire`/`Release` would suffice
//! for the publication edge alone, but two of the sites form an IRIW-style
//! *store-load* fence pair that genuinely needs a total order, and the
//! remaining sites are not on any measured hot path where weakening would
//! be observable — so the cell keeps one uniform, auditable ordering:
//!
//! * `load` (a) `active.load` — must not be reordered after the announce
//!   increment (b); `SeqCst` on both gives the pair a single total order.
//! * `load` (b) `readers.fetch_add` — the *announce*. Must be globally
//!   visible before the re-check (c) reads `active`; a publisher that
//!   later drains this slot must observe the increment (store-load:
//!   RMW here vs `readers.load` in `store`). This is the site where
//!   `Release`/`Acquire` alone is insufficient.
//! * `load` (c) `active.load` — the re-check; paired with (b) it closes
//!   the announce-then-verify window.
//! * `load` (d) `readers.fetch_sub` — releases the pin; must order after
//!   the value clone so a drain cannot observe 0 mid-clone (`SeqCst`
//!   keeps the clone inside the (b)/(d) window).
//! * `store` `active.load` / `readers.load` — the drain loop; must
//!   observe announces from (b) (store-load pair described above).
//! * `store` `active.store` — the publication point; the slot write must
//!   happen-before any reader observing the new index (`Release` would
//!   do; `SeqCst` also participates in the (a)/(b) total order).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use fairdms_check::atomic::AtomicUsize;
use fairdms_check::cell::UnsafeCell;
use parking_lot::Mutex;

struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Arc<T>>,
}

/// A lock-free read / atomic-swap publish cell holding an `Arc<T>`.
pub struct SnapshotCell<T> {
    active: AtomicUsize,
    slots: [Slot<T>; 2],
    /// Serializes publishers; never touched by readers.
    write_lock: Mutex<()>,
}

// SAFETY: SnapshotCell is Send for T: Send + Sync because moving the cell
// moves the slot values (`Arc<T>`, itself Send for such T) and every other
// field is a plain sync primitive.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
// SAFETY: SnapshotCell is Sync for T: Send + Sync because the interior
// `UnsafeCell<Arc<T>>` is only ever (1) written by the single publisher
// holding `write_lock`, targeting the inactive slot after its reader
// count drained to zero, and (2) read by readers that have announced on
// the slot and re-verified it is active — the left-right protocol proved
// in the module docs and model-checked in tests/model_swap.rs. Shared
// `&SnapshotCell` access therefore never yields unsynchronized aliasing
// of the cell contents.
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        SnapshotCell {
            active: AtomicUsize::new(0),
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(Arc::clone(&value)),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(value),
                },
            ],
            write_lock: Mutex::new(()),
        }
    }

    /// Returns the currently-published snapshot. Lock-free; safe from any
    /// number of threads concurrently with [`SnapshotCell::store`].
    pub fn load(&self) -> Arc<T> {
        loop {
            // (a) Which slot is active? (Ordering audit: module docs.)
            let i = self.active.load(Ordering::SeqCst);
            // (b) Announce on it before trusting it.
            self.slots[i].readers.fetch_add(1, Ordering::SeqCst);
            // (c) Re-check: if the slot is still active now that we are
            // announced, no publisher can start writing it beneath us.
            if self.active.load(Ordering::SeqCst) == i {
                // Slot i is active ⇒ fully written and not being mutated;
                // our announced read pins it until the decrement below.
                let value = self.slots[i].value.with(|v| {
                    // SAFETY: dereferencing the shared cell is sound
                    // because the re-check above proved slot i active
                    // while our announce (b) was visible: a publisher
                    // writes a slot only after observing readers == 0
                    // *and* only while the slot is inactive, so no write
                    // overlaps this clone (left-right invariant, module
                    // docs; model-checked in tests/model_swap.rs).
                    unsafe { (*v).clone() }
                });
                // (d) Unpin after the clone completes.
                self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // A publication moved `active` between our load and announce;
            // withdraw and retry on the new slot.
            self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes a new snapshot. The swap itself is a single atomic store
    /// of the active-slot index; readers that loaded the old snapshot keep
    /// their `Arc` until they drop it.
    pub fn store(&self, value: Arc<T>) {
        let _publisher = self.write_lock.lock();
        let target = 1 - self.active.load(Ordering::SeqCst);
        // Wait out readers still cloning from the slot we are about to
        // overwrite (they announced before the previous swap).
        while self.slots[target].readers.load(Ordering::SeqCst) != 0 {
            fairdms_check::hint::spin_loop();
        }
        // Exclusive: slot is inactive, publisher lock held, readers drained.
        self.slots[target].value.with_mut(|v| {
            // SAFETY: exclusive access to the cell holds because (1) the
            // publisher lock serializes all writers, (2) `target` is the
            // inactive slot so no reader passes its re-check for it, and
            // (3) the drain loop above saw readers == 0, so no
            // pre-publication straggler is still cloning (module docs;
            // model-checked in tests/model_swap.rs).
            unsafe {
                *v = value;
            }
        });
        self.active.store(target, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        for v in 3..50 {
            cell.store(Arc::new(v));
            assert_eq!(*cell.load(), v);
        }
    }

    #[test]
    fn old_snapshots_survive_replacement() {
        let cell = SnapshotCell::new(Arc::new(vec![1, 2, 3]));
        let old = cell.load();
        cell.store(Arc::new(vec![9]));
        cell.store(Arc::new(vec![10]));
        assert_eq!(*old, vec![1, 2, 3], "reader-held Arc must stay intact");
        assert_eq!(*cell.load(), vec![10]);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_values() {
        // Snapshot payload with an internal invariant: (n, 2n). A torn
        // read would produce a pair violating it.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..6 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                // Relaxed: plain test stop flag — it guards no data and
                // shutdown timing is irrelevant (repolint allowlist).
                while !stop.load(Ordering::Relaxed) {
                    let snap = cell.load();
                    assert_eq!(snap.1, snap.0 * 2, "torn snapshot observed");
                    reads += 1;
                }
                reads
            }));
        }
        let deadline = Instant::now() + Duration::from_millis(200);
        let mut n = 0u64;
        while Instant::now() < deadline {
            n += 1;
            cell.store(Arc::new((n, n * 2)));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers made no progress");
        assert!(n > 0, "writer made no progress");
        let last = cell.load();
        assert_eq!(last.0, n);
    }
}
