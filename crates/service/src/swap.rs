//! A lock-free, atomically-swappable `Arc` cell (left-right technique).
//!
//! [`SnapshotCell`] hands the *current* snapshot to any number of reader
//! threads without a lock on the read path, while publishers replace it
//! with a single atomic swap of the active-slot index. This is the
//! left-right concurrency construction (Ramalhete & Correia): two slots,
//! readers announce themselves on the slot the `active` index points to,
//! and a publisher only ever writes the *inactive* slot after waiting for
//! its reader count to drain.
//!
//! ## Why the protocol is sound
//!
//! A reader (a) loads `active = i`, (b) increments `readers[i]`, then
//! (c) re-checks `active == i`. The cell value of slot `i` is cloned only
//! when the re-check passes.
//!
//! * Publishers mutate only the inactive slot (publisher-side exclusivity
//!   is guaranteed by `write_lock`), so `active == i` at (c) implies no
//!   publisher is writing slot `i` at that moment — `active` can only point
//!   at a fully-written slot, because the publisher's swap of `active` is
//!   its *last* store (`SeqCst`, so the write to the slot happens-before
//!   any reader that observes the new index).
//! * A publisher writes a slot only after observing `readers == 0` for it.
//!   Any reader that increments afterwards must fail its re-check (the
//!   slot being written is inactive and stays inactive until the write
//!   finishes), so it retries without touching the cell.
//! * A reader holds its `readers[i]` increment across the clone, so a
//!   *subsequent* publication targeting slot `i` waits until the clone is
//!   done.
//!
//! Reads are lock-free (two atomic RMWs, two loads, one `Arc` clone) and
//! never block behind a publisher; a publisher waits only for stragglers
//! mid-clone on the slot it wants to reuse, which is a bounded handful of
//! instructions.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Arc<T>>,
}

/// A lock-free read / atomic-swap publish cell holding an `Arc<T>`.
pub struct SnapshotCell<T> {
    active: AtomicUsize,
    slots: [Slot<T>; 2],
    /// Serializes publishers; never touched by readers.
    write_lock: Mutex<()>,
}

// Safety: the cell value is only written by the single publisher holding
// `write_lock`, and only while the slot is inactive with a drained reader
// count; readers only read it after proving the slot is active (see the
// module docs). `Arc<T>` itself is Send+Sync for T: Send + Sync.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        SnapshotCell {
            active: AtomicUsize::new(0),
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(Arc::clone(&value)),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(value),
                },
            ],
            write_lock: Mutex::new(()),
        }
    }

    /// Returns the currently-published snapshot. Lock-free; safe from any
    /// number of threads concurrently with [`SnapshotCell::store`].
    pub fn load(&self) -> Arc<T> {
        loop {
            let i = self.active.load(Ordering::SeqCst);
            self.slots[i].readers.fetch_add(1, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) == i {
                // Slot i is active ⇒ fully written and not being mutated;
                // our announced read pins it until the decrement below.
                let value = unsafe { (*self.slots[i].value.get()).clone() };
                self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // A publication moved `active` between our load and announce;
            // withdraw and retry on the new slot.
            self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes a new snapshot. The swap itself is a single atomic store
    /// of the active-slot index; readers that loaded the old snapshot keep
    /// their `Arc` until they drop it.
    pub fn store(&self, value: Arc<T>) {
        let _publisher = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        let target = 1 - self.active.load(Ordering::SeqCst);
        // Wait out readers still cloning from the slot we are about to
        // overwrite (they announced before the previous swap).
        while self.slots[target].readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // Exclusive: slot is inactive, publisher lock held, readers drained.
        unsafe {
            *self.slots[target].value.get() = value;
        }
        self.active.store(target, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        for v in 3..50 {
            cell.store(Arc::new(v));
            assert_eq!(*cell.load(), v);
        }
    }

    #[test]
    fn old_snapshots_survive_replacement() {
        let cell = SnapshotCell::new(Arc::new(vec![1, 2, 3]));
        let old = cell.load();
        cell.store(Arc::new(vec![9]));
        cell.store(Arc::new(vec![10]));
        assert_eq!(*old, vec![1, 2, 3], "reader-held Arc must stay intact");
        assert_eq!(*cell.load(), vec![10]);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_values() {
        // Snapshot payload with an internal invariant: (n, 2n). A torn
        // read would produce a pair violating it.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..6 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = cell.load();
                    assert_eq!(snap.1, snap.0 * 2, "torn snapshot observed");
                    reads += 1;
                }
                reads
            }));
        }
        let deadline = Instant::now() + Duration::from_millis(200);
        let mut n = 0u64;
        while Instant::now() < deadline {
            n += 1;
            cell.store(Arc::new((n, n * 2)));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers made no progress");
        assert!(n > 0, "writer made no progress");
        let last = cell.load();
        assert_eq!(last.0, n);
    }
}
