//! The fairDMS server: an actor-style event loop owning the service state.
//!
//! All user-plane state (the fairDS system models, the data store handle,
//! the model Zoo) lives on one worker thread; clients talk to it through a
//! bounded crossbeam channel and receive replies over per-request one-shot
//! channels. This is the classic ownership-transfer design from the
//! concurrency guides: no shared mutable state, no lock ordering to get
//! wrong — the channel *is* the synchronization. Reads that genuinely can
//! run in parallel (training-loop fetches) bypass the actor entirely by
//! holding an `Arc<Collection>` to the store, exactly as the paper's
//! trainer reads MongoDB directly while the service handles updates.
//!
//! The system plane (paper Fig 5, yellow) runs inside the same loop: every
//! ingest and PDF request is scored by the fuzzy-certainty monitor, and
//! when certainty drops below the configured threshold the server retrains
//! the embedding + clustering models and re-indexes the store before
//! acknowledging the request (the Fig 16 "After Trigger" behaviour).

use crate::api::{RankedModels, Reply, Request, RequestId, ServiceError, ServiceResult};
use crate::metrics::Metrics;
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use fairdms_core::embedding::EmbedTrainConfig;
use fairdms_core::fairms::ModelDecision;
use fairdms_core::workflow::RapidTrainer;
use fairdms_core::ZooEntry;
use fairdms_nn::checkpoint;
use fairdms_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A label fallback installed server-side (the expensive conventional
/// labeler, e.g. a pseudo-Voigt fit).
pub type FallbackLabeler = Box<dyn FnMut(&[f32]) -> Vec<f32> + Send>;

/// Server deployment knobs.
#[derive(Clone, Debug)]
pub struct DmsServerConfig {
    /// Admission queue depth; `try_send` beyond this is rejected with
    /// [`ServiceError::Unavailable`] (backpressure instead of unbounded
    /// memory growth).
    pub queue_capacity: usize,
    /// Pseudo-label reuse threshold used by [`Request::PseudoLabel`] when
    /// the caller passes a non-finite threshold, and by `UpdateModel`.
    pub default_label_threshold: f32,
    /// Whether the certainty monitor may trigger system-plane retraining.
    pub auto_retrain: bool,
    /// Minimum number of monitored requests between two triggered
    /// retrains. A system plane whose refresh cannot lift certainty above
    /// the threshold (e.g. genuinely ambiguous data) would otherwise
    /// retrain on *every* request; the cooldown bounds that thrashing.
    /// `0` disables the cooldown.
    pub retrain_cooldown: usize,
    /// Embedding hyper-parameters for triggered retrains.
    pub retrain_embed_cfg: EmbedTrainConfig,
}

impl Default for DmsServerConfig {
    fn default() -> Self {
        DmsServerConfig {
            queue_capacity: 64,
            default_label_threshold: 0.5,
            auto_retrain: true,
            retrain_cooldown: 0,
            retrain_embed_cfg: EmbedTrainConfig::default(),
        }
    }
}

struct Envelope {
    /// Monotonic admission id; surfaced in panics/diagnostics only.
    #[allow(dead_code)]
    id: RequestId,
    req: Request,
    reply: Sender<ServiceResult>,
}

/// Clone-able client handle. Every call is synchronous: it enqueues the
/// request and blocks on the one-shot reply.
#[derive(Clone)]
pub struct DmsClient {
    tx: Sender<Envelope>,
    next_id: Arc<AtomicU64>,
    metrics: Arc<Metrics>,
}

/// Join handle owning the server's lifetime. The worker exits when either
/// (a) every [`DmsClient`] clone has been dropped (queue disconnect), or
/// (b) this handle is dropped or [`ServerHandle::shutdown`] is called —
/// the handle signals a dedicated shutdown channel *before* joining, so
/// the join can never deadlock on clients that are still alive (their
/// subsequent calls get [`ServiceError::Unavailable`]). Queued requests
/// are drained before the worker exits either way.
pub struct ServerHandle {
    worker: Option<JoinHandle<()>>,
    shutdown_tx: Option<Sender<()>>,
    metrics: Arc<Metrics>,
}

impl ServerHandle {
    /// Metrics registry shared with the worker.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Signals shutdown, drains queued requests, and joins the worker.
    pub fn shutdown(self) {
        drop(self) // Drop does the work; this method exists for intent.
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        drop(self.shutdown_tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// The server: owns a [`RapidTrainer`] (fairDS + Zoo + manager) and a
/// fallback labeler, and serves [`Request`]s until all clients disconnect.
pub struct DmsServer;

impl DmsServer {
    /// Spawns the worker and returns a client plus the join handle.
    ///
    /// The `trainer` carries the fairDS instance (trained or not), the
    /// Zoo, and the recommendation policy; `labeler` is the conventional
    /// (expensive) labeling fallback.
    pub fn spawn(
        trainer: RapidTrainer,
        labeler: FallbackLabeler,
        cfg: DmsServerConfig,
    ) -> (DmsClient, ServerHandle) {
        let (tx, rx) = bounded::<Envelope>(cfg.queue_capacity);
        let (shutdown_tx, shutdown_rx) = bounded::<()>(0);
        let metrics = Arc::new(Metrics::new());
        let worker_metrics = Arc::clone(&metrics);
        let worker = std::thread::Builder::new()
            .name("fairdms-server".into())
            .spawn(move || worker_loop(trainer, labeler, cfg, rx, shutdown_rx, worker_metrics))
            .expect("failed to spawn fairdms-server thread");
        let client = DmsClient {
            tx,
            next_id: Arc::new(AtomicU64::new(0)),
            metrics: Arc::clone(&metrics),
        };
        (
            client,
            ServerHandle {
                worker: Some(worker),
                shutdown_tx: Some(shutdown_tx),
                metrics,
            },
        )
    }
}

fn validate_images(images: &Tensor) -> Result<(), ServiceError> {
    if images.shape().len() != 2 || images.shape()[0] == 0 {
        return Err(ServiceError::Invalid(format!(
            "expected non-empty [N, D] images, got shape {:?}",
            images.shape()
        )));
    }
    Ok(())
}

fn worker_loop(
    mut trainer: RapidTrainer,
    mut labeler: FallbackLabeler,
    cfg: DmsServerConfig,
    rx: Receiver<Envelope>,
    shutdown_rx: Receiver<()>,
    metrics: Arc<Metrics>,
) {
    let mut monitor = MonitorState::default();
    let mut serve = |env: Envelope| {
        let op = env.req.op_name();
        let start = Instant::now();
        let result = handle(&mut trainer, &mut labeler, &cfg, &mut monitor, env.req, &metrics);
        metrics.op(op).record(start.elapsed(), result.is_ok());
        // A client that gave up (dropped its reply receiver) is not an
        // error; the work was already done.
        let _ = env.reply.send(result);
    };
    loop {
        crossbeam_channel::select! {
            recv(rx) -> env => match env {
                Ok(env) => serve(env),
                // Every client dropped: nothing can arrive anymore.
                Err(_) => break,
            },
            recv(shutdown_rx) -> _ => {
                // Handle dropped / shutdown requested: drain what is
                // already queued, then stop. Clients that are still alive
                // observe `Unavailable` from then on.
                while let Ok(env) = rx.try_recv() {
                    serve(env);
                }
                break;
            }
        }
    }
}

/// Per-worker state of the certainty monitor.
#[derive(Default)]
struct MonitorState {
    /// Monitored requests seen since the last triggered retrain.
    since_retrain: usize,
}

/// Runs the certainty monitor on a batch; retrains the system plane when
/// it fires and the cooldown allows. Returns whether a retrain happened.
fn monitor_and_maybe_retrain(
    trainer: &mut RapidTrainer,
    cfg: &DmsServerConfig,
    state: &mut MonitorState,
    images: &Tensor,
    metrics: &Metrics,
) -> bool {
    if !cfg.auto_retrain || !trainer.fairds.is_ready() {
        return false;
    }
    state.since_retrain += 1;
    if state.since_retrain <= cfg.retrain_cooldown {
        return false;
    }
    if trainer.fairds.needs_system_update(images) {
        trainer.fairds.retrain_system(images, &cfg.retrain_embed_cfg);
        metrics.system_retrains.fetch_add(1, Ordering::Relaxed);
        state.since_retrain = 0;
        true
    } else {
        false
    }
}

fn handle(
    trainer: &mut RapidTrainer,
    labeler: &mut FallbackLabeler,
    cfg: &DmsServerConfig,
    monitor: &mut MonitorState,
    req: Request,
    metrics: &Metrics,
) -> ServiceResult {
    match req {
        Request::TrainSystem { images, embed_cfg } => {
            validate_images(&images)?;
            let k = trainer.fairds.train_system(&images, &embed_cfg);
            Ok(Reply::SystemTrained { k })
        }
        Request::IngestLabeled {
            images,
            labels,
            scan,
        } => {
            validate_images(&images)?;
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            if labels.shape()[0] != images.shape()[0] {
                return Err(ServiceError::Invalid(format!(
                    "label rows {} != image rows {}",
                    labels.shape()[0],
                    images.shape()[0]
                )));
            }
            let retrained = monitor_and_maybe_retrain(trainer, cfg, monitor, &images, metrics);
            let ids = trainer.fairds.ingest_labeled(&images, &labels, scan);
            Ok(Reply::Ingested {
                count: ids.len(),
                retrained,
            })
        }
        Request::DatasetPdf { images } => {
            validate_images(&images)?;
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            monitor_and_maybe_retrain(trainer, cfg, monitor, &images, metrics);
            Ok(Reply::Pdf(trainer.fairds.dataset_pdf(&images)))
        }
        Request::PseudoLabel { images, threshold } => {
            validate_images(&images)?;
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            let thr = if threshold.is_finite() {
                threshold
            } else {
                cfg.default_label_threshold
            };
            let (labels, stats) = trainer.fairds.pseudo_label(&images, thr, |p| labeler(p));
            Ok(Reply::Labeled { labels, stats })
        }
        Request::LookupMatching { pdf, count } => {
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            if pdf.len() != trainer.fairds.k() {
                return Err(ServiceError::Invalid(format!(
                    "pdf length {} != k {}",
                    pdf.len(),
                    trainer.fairds.k()
                )));
            }
            Ok(Reply::Documents(trainer.fairds.lookup_matching(&pdf, count)))
        }
        Request::Recommend { pdf } => {
            if pdf.is_empty() {
                return Err(ServiceError::Invalid("empty pdf".into()));
            }
            let ranked = trainer
                .manager
                .rank(&trainer.zoo, &pdf)
                .map(|r| r.ranked)
                .unwrap_or_default();
            let fine_tunable = matches!(
                trainer.manager.decide(&trainer.zoo, &pdf),
                ModelDecision::FineTune { .. }
            );
            Ok(Reply::Ranked(RankedModels {
                ranked,
                fine_tunable,
            }))
        }
        Request::UpdateModel { images, scan } => {
            validate_images(&images)?;
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            monitor_and_maybe_retrain(trainer, cfg, monitor, &images, metrics);
            let (net, report) = trainer.update_model(&images, |p| labeler(p), scan);
            Ok(Reply::Updated {
                checkpoint: checkpoint::save(&net),
                report,
            })
        }
        Request::PublishModel {
            name,
            checkpoint,
            pdf,
            scan,
        } => {
            if pdf.is_empty() {
                return Err(ServiceError::Invalid("empty pdf".into()));
            }
            let arch = trainer.config().arch;
            let zoo_id = trainer.zoo.add(ZooEntry {
                name,
                arch,
                checkpoint,
                train_pdf: pdf,
                scan,
            });
            Ok(Reply::Published { zoo_id })
        }
        Request::FetchModel { zoo_id } => match trainer.zoo.get(zoo_id) {
            Some(entry) => Ok(Reply::Model {
                checkpoint: entry.checkpoint.clone(),
                pdf: entry.train_pdf.clone(),
            }),
            None => Err(ServiceError::UnknownModel(zoo_id)),
        },
        Request::Certainty { images } => {
            validate_images(&images)?;
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            Ok(Reply::Certainty(trainer.fairds.certainty(&images)))
        }
        Request::Metrics => Ok(Reply::Metrics(metrics.snapshot())),
    }
}

impl DmsClient {
    /// Sends a raw request and waits for the reply. Returns
    /// [`ServiceError::Unavailable`] when the server is gone or the
    /// admission queue is full.
    pub fn call(&self, req: Request) -> ServiceResult {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        let env = Envelope {
            id,
            req,
            reply: reply_tx,
        };
        match self.tx.try_send(env) {
            Ok(()) => {}
            Err(TrySendError::Full(env)) => {
                // Backpressure: block rather than reject when the queue is
                // merely full; reject only on disconnect.
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                if self.tx.send(env).is_err() {
                    return Err(ServiceError::Unavailable);
                }
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServiceError::Unavailable),
        }
        reply_rx.recv().map_err(|_| ServiceError::Unavailable)?
    }

    /// Bootstrap the system plane. Returns the fitted K.
    pub fn train_system(&self, images: Tensor, embed_cfg: EmbedTrainConfig) -> Result<usize, ServiceError> {
        match self.call(Request::TrainSystem { images, embed_cfg })? {
            Reply::SystemTrained { k } => Ok(k),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Ingest labeled data; returns `(count, retrained)`.
    pub fn ingest(
        &self,
        images: Tensor,
        labels: Tensor,
        scan: usize,
    ) -> Result<(usize, bool), ServiceError> {
        match self.call(Request::IngestLabeled {
            images,
            labels,
            scan,
        })? {
            Reply::Ingested { count, retrained } => Ok((count, retrained)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Dataset cluster PDF.
    pub fn dataset_pdf(&self, images: Tensor) -> Result<Vec<f64>, ServiceError> {
        match self.call(Request::DatasetPdf { images })? {
            Reply::Pdf(p) => Ok(p),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Pseudo-label with the server's fallback. Pass `f32::NAN` to use the
    /// server's default threshold.
    pub fn pseudo_label(
        &self,
        images: Tensor,
        threshold: f32,
    ) -> Result<(Tensor, fairdms_core::PseudoLabelStats), ServiceError> {
        match self.call(Request::PseudoLabel { images, threshold })? {
            Reply::Labeled { labels, stats } => Ok((labels, stats)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// PDF-matched document retrieval.
    pub fn lookup(
        &self,
        pdf: Vec<f64>,
        count: usize,
    ) -> Result<Vec<fairdms_datastore::Document>, ServiceError> {
        match self.call(Request::LookupMatching { pdf, count })? {
            Reply::Documents(d) => Ok(d),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Zoo ranking for a dataset PDF.
    pub fn recommend(&self, pdf: Vec<f64>) -> Result<RankedModels, ServiceError> {
        match self.call(Request::Recommend { pdf })? {
            Reply::Ranked(r) => Ok(r),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Full rapid model update; returns `(checkpoint, report)`.
    pub fn update_model(
        &self,
        images: Tensor,
        scan: usize,
    ) -> Result<(Vec<u8>, fairdms_core::UpdateReport), ServiceError> {
        match self.call(Request::UpdateModel { images, scan })? {
            Reply::Updated { checkpoint, report } => Ok((checkpoint, report)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Publish an externally trained checkpoint.
    pub fn publish(
        &self,
        name: &str,
        checkpoint: Vec<u8>,
        pdf: Vec<f64>,
        scan: usize,
    ) -> Result<usize, ServiceError> {
        match self.call(Request::PublishModel {
            name: name.to_string(),
            checkpoint,
            pdf,
            scan,
        })? {
            Reply::Published { zoo_id } => Ok(zoo_id),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Fetch a checkpoint and its training PDF from the Zoo.
    pub fn fetch(&self, zoo_id: usize) -> Result<(Vec<u8>, Vec<f64>), ServiceError> {
        match self.call(Request::FetchModel { zoo_id })? {
            Reply::Model { checkpoint, pdf } => Ok((checkpoint, pdf)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Fuzzy-clustering certainty of a dataset.
    pub fn certainty(&self, images: Tensor) -> Result<f64, ServiceError> {
        match self.call(Request::Certainty { images })? {
            Reply::Certainty(c) => Ok(c),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Server metrics snapshot.
    pub fn metrics(&self) -> Result<crate::metrics::MetricsSnapshot, ServiceError> {
        match self.call(Request::Metrics)? {
            Reply::Metrics(m) => Ok(m),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }
}
