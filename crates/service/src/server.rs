//! The fairDMS server: a split user plane *and* a split write plane.
//!
//! The service state is divided along the read/write axis (DESIGN.md §6)
//! and, within the write side, along the cheap/heavy axis (DESIGN.md §7):
//!
//! * **Mutation actor** — an actor-style event loop on one thread owning
//!   the mutable state (the [`RapidTrainer`]: trainable fairDS, live model
//!   Zoo, fallback labeler). All mutating requests (`TrainSystem`,
//!   `IngestLabeled`, `PseudoLabel`, `UpdateModel`, `PublishModel`)
//!   serialize through it over a bounded channel — no shared mutable
//!   state, no lock ordering; the channel *is* the synchronization. The
//!   actor keeps only O(ms) work: ingest, the pseudo-label ledger, zoo
//!   publication, snapshot swaps, and the *bookends* of training.
//! * **Training executor** — a background
//!   [`JobPool`](fairdms_flows::jobs::JobPool) owning the heavy work:
//!   multi-epoch `UpdateModel` fine-tunes and certainty-triggered system
//!   retrains. Jobs run against an **immutable input snapshot** prepared
//!   by the actor ([`fairdms_core::workflow::UpdatePlan`],
//!   [`fairdms_core::fairds::RetrainJob`]), poll a cancel token at every
//!   epoch boundary, and complete by messaging their result back to the
//!   actor, which **fences** it (the plane version the job trained from
//!   must still be live) before registering + publishing. A newer trigger
//!   for the same plane *supersedes* the running job: it is cancelled at
//!   its next epoch boundary and its client answers
//!   [`ServiceError::Superseded`] instead of publishing a stale model.
//!   `training_pool_size: 0` disables the executor and restores the old
//!   actor-serialized behaviour (training completes before the ack).
//! * **Read plane** — a pool of worker threads serving all read-only
//!   requests (`DatasetPdf`, `LookupMatching`, `Recommend`, `FetchModel`,
//!   `Certainty`, `Metrics`) from an immutable [`ServiceView`] snapshot
//!   (frozen embedder + k-means + Zoo index) fetched per request from a
//!   lock-free [`SnapshotCell`]. Readers never touch the actor — and with
//!   the training executor, neither does a training run, so ingest keeps
//!   flowing *while* a model fine-tunes, exactly as the paper's trainer
//!   reads MongoDB directly while the service handles updates (fairDMS
//!   §III; the FAIR-HEDM follow-up runs fine-tuning as asynchronous
//!   checkpointed jobs against the registry).
//!
//! Every publication is still publish-before-acknowledge: the actor
//! freezes the post-mutation state into the read plane — a single atomic
//! `Arc` swap — before the owning client sees its reply, so a client that
//! hears an ack can immediately read the state the ack describes.

use crate::api::{RankedModels, Reply, Request, RequestId, ServiceError, ServiceResult};
use crate::metrics::Metrics;
use crate::swap::SnapshotCell;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use fairdms_core::embedding::EmbedTrainConfig;
use fairdms_core::fairds::{RetrainJob, RetrainedSystem, SystemSnapshot};
use fairdms_core::fairms::{ModelManager, ZooSnapshot};
use fairdms_core::reuse::EmbedCacheConfig;
use fairdms_core::workflow::{RapidTrainer, TrainedUpdate, UpdatePlan};
use fairdms_core::ZooEntry;
use fairdms_flows::jobs::{CancelToken, JobPool, TenantId, TenantQueueConfig, DEFAULT_TENANT};
use fairdms_nn::checkpoint;
use fairdms_nn::trainer::TrainControl;
use fairdms_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A label fallback installed server-side (the expensive conventional
/// labeler, e.g. a pseudo-Voigt fit).
pub type FallbackLabeler = Box<dyn FnMut(&[f32]) -> Vec<f32> + Send>;

/// Server deployment knobs.
#[derive(Clone, Debug)]
pub struct DmsServerConfig {
    /// Admission queue depth per plane; `try_send` beyond this blocks the
    /// client (backpressure instead of unbounded memory growth).
    pub queue_capacity: usize,
    /// Pseudo-label reuse threshold used by [`Request::PseudoLabel`] when
    /// the caller passes a non-finite threshold, and by `UpdateModel`.
    pub default_label_threshold: f32,
    /// Whether the certainty monitor may trigger system-plane retraining.
    pub auto_retrain: bool,
    /// Minimum number of monitored requests between two triggered
    /// retrains. A system plane whose refresh cannot lift certainty above
    /// the threshold (e.g. genuinely ambiguous data) would otherwise
    /// retrain on *every* request; the cooldown bounds that thrashing.
    /// `0` disables the cooldown.
    ///
    /// Since the user-plane split, only *mutating* image-bearing requests
    /// (`IngestLabeled`, `UpdateModel`) are monitored — reads are served
    /// from snapshots off the actor and never tick this counter, so
    /// deployments tuned against the old all-requests counting should
    /// lower their cooldown accordingly.
    pub retrain_cooldown: usize,
    /// Embedding hyper-parameters for triggered retrains.
    pub retrain_embed_cfg: EmbedTrainConfig,
    /// Read-plane worker count. `0` sizes the pool from the machine's
    /// available parallelism (capped at 8).
    pub read_pool_size: usize,
    /// Training-executor worker count (default 1). Heavy training jobs —
    /// `UpdateModel` fine-tunes and certainty-triggered system retrains —
    /// run on this background pool so the mutation actor keeps serving
    /// ingest while models train. `0` disables the executor and restores
    /// the actor-serialized write plane: training runs inline and its
    /// client waits out every epoch (the pre-split behaviour, kept as the
    /// bench baseline and for deployments that need the synchronous
    /// retrain-before-ack contract).
    pub training_pool_size: usize,
    /// Maximum training jobs queued (admitted but not yet picked up by an
    /// executor worker) for this deployment's tenant before new training
    /// triggers answer [`ServiceError::Busy`] — bounded, observable
    /// admission instead of unbounded queue growth (DESIGN.md §14). The
    /// gauge is `training_jobs_queued` in the metrics snapshot.
    pub training_queue_capacity: usize,
    /// Total entry budget of the embedding-reuse cache (the data-reuse
    /// plane, DESIGN.md §8): repeated frames served to `DatasetPdf`,
    /// `Certainty`, `PseudoLabel` and the ingest path skip the encoder
    /// forward pass. `0` disables memoization.
    pub embed_cache_capacity: usize,
    /// Shard count of the embedding-reuse cache (lock-light concurrency:
    /// one short mutex per shard, no global lock).
    pub embed_cache_shards: usize,
}

impl Default for DmsServerConfig {
    fn default() -> Self {
        DmsServerConfig {
            queue_capacity: 64,
            default_label_threshold: 0.5,
            auto_retrain: true,
            retrain_cooldown: 0,
            retrain_embed_cfg: EmbedTrainConfig::default(),
            read_pool_size: 0,
            training_pool_size: 1,
            training_queue_capacity: 64,
            embed_cache_capacity: EmbedCacheConfig::default().capacity,
            embed_cache_shards: EmbedCacheConfig::default().shards,
        }
    }
}

impl DmsServerConfig {
    fn resolved_read_pool(&self) -> usize {
        if self.read_pool_size > 0 {
            return self.read_pool_size;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8)
    }
}

/// The immutable state a read worker serves one request from.
///
/// No method on this type (or anything it holds) takes `&mut self`;
/// publication replaces the whole view via [`SnapshotCell::store`].
pub struct ServiceView {
    /// Fitted fairDS system plane (`None` before `TrainSystem`).
    pub system: Option<Arc<SystemSnapshot>>,
    /// Frozen Zoo index.
    pub zoo: ZooSnapshot,
    /// Recommendation policy frozen alongside the index. Taken verbatim
    /// from the trainer's (publicly mutable) `ModelManager`; the read
    /// plane re-validates it per `Recommend` and answers
    /// [`ServiceError::Invalid`] when it is outside `[0, 1]` — an
    /// out-of-range trainer configuration must degrade one operation, not
    /// unwind (and poison) a read worker.
    pub distance_threshold: f64,
}

impl ServiceView {
    fn of(trainer: &RapidTrainer) -> Self {
        ServiceView {
            system: trainer.fairds.snapshot(),
            zoo: trainer.zoo.snapshot(),
            distance_threshold: trainer.manager.distance_threshold,
        }
    }
}

struct Shared {
    view: SnapshotCell<ServiceView>,
    metrics: Arc<Metrics>,
    /// Set when the actor dies by panic: the write plane is gone, so the
    /// whole service reports `Unavailable` rather than serving reads from
    /// a state that can no longer be maintained.
    poisoned: AtomicBool,
}

struct Envelope {
    /// Monotonic admission id; surfaced in panics/diagnostics only.
    #[allow(dead_code)]
    id: RequestId,
    req: Request,
    reply: Sender<ServiceResult>,
    /// When the client started admission; `dequeue − enqueued` is the
    /// queue-wait metric (includes any backpressure block).
    enqueued: Instant,
}

enum Msg {
    Req(Envelope),
    /// Best-effort nudge from a training worker: a completion is waiting
    /// on the actor's done channel. Carries nothing — the actor drains
    /// completions at every iteration anyway; the wake only matters when
    /// the actor is blocked on an empty request queue.
    Wake,
    Shutdown,
}

/// A finished training job travelling back to the actor for fenced
/// completion. The reply sender of the originating request rides along on
/// update jobs (retrains have no waiting client).
enum TrainOutcome {
    Update {
        job: u64,
        reply: Sender<ServiceResult>,
        /// When the actor dequeued the originating request; completion
        /// records `started.elapsed()` as the op's run time.
        started: Instant,
        /// `None` when the job panicked (a bug in the training loop) —
        /// the actor poisons the service loudly, the same contract a
        /// panic on the actor itself has. Boxed to keep the queued
        /// completion message small (the payload carries the fine-tuned
        /// network and report).
        trained: Option<Box<TrainedUpdate>>,
    },
    Retrain {
        job: u64,
        result: RetrainResult,
    },
}

/// How a retrain job ended on the executor. The completed payload is
/// boxed: it now ships the job's full embedding/pixel matrices (the
/// O(copy) install input), which would otherwise bloat every queued
/// completion message to the largest variant's size.
enum RetrainResult {
    Completed(Box<RetrainedSystem>),
    /// Observed its cancel token and wound down (benign).
    Cancelled,
    /// Panicked (a bug in the training loop); the actor poisons.
    Panicked,
}

/// One in-flight training job (the latest trigger for its plane).
struct InFlight {
    job: u64,
    token: CancelToken,
}

/// Actor-owned training-executor state: the pool, the completion channel,
/// and the latest in-flight job per plane (model updates / system
/// retrains). "Latest" is the supersession rule: submitting a newer job
/// for a plane cancels the previous one's token.
struct TrainingExec {
    /// `None` ⇒ serialized mode (`training_pool_size: 0`): training runs
    /// inline on the actor. `Arc` because the pool may be shared by every
    /// tenant of a multi-tenant deployment (DESIGN.md §14); a solo server
    /// holds the only strong reference and still joins the workers at
    /// shutdown.
    pool: Option<Arc<JobPool>>,
    /// The tenant this actor submits training work as; queue bounds and
    /// round-robin fairness in the shared pool key off it.
    tenant: TenantId,
    done_tx: Sender<TrainOutcome>,
    wake_tx: Sender<Msg>,
    next_job: u64,
    update: Option<InFlight>,
    retrain: Option<InFlight>,
}

impl TrainingExec {
    /// Whether the tenant's training queue can admit one more job. `true`
    /// in serialized mode (inline training has no queue). Race-free as an
    /// admission pre-check because this actor is the only thread that
    /// enqueues under its tenant id.
    fn has_queue_capacity(&self) -> bool {
        self.pool
            .as_ref()
            .is_none_or(|p| p.has_capacity(self.tenant))
    }

    /// Cancels the in-flight update (a newer trigger supersedes it) and
    /// counts the supersession.
    fn supersede_update(&mut self, metrics: &Metrics) {
        if let Some(prev) = self.update.take() {
            prev.token.cancel();
            metrics
                .training_jobs_superseded
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cancels the in-flight retrain (a newer trigger supersedes it) and
    /// counts the supersession.
    fn supersede_retrain(&mut self, metrics: &Metrics) {
        if let Some(prev) = self.retrain.take() {
            prev.token.cancel();
            metrics
                .training_jobs_superseded
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Submits a prepared update plan to the executor; the reply sender
    /// travels with the job and is answered at fenced completion. A panic
    /// inside the epoch loop is caught on the worker and reported as a
    /// failed outcome — never a silently vanished job.
    fn submit_update(&mut self, plan: UpdatePlan, reply: Sender<ServiceResult>, started: Instant) {
        let job = self.next_job;
        self.next_job += 1;
        let token = CancelToken::new();
        self.update = Some(InFlight {
            job,
            token: token.clone(),
        });
        let done = self.done_tx.clone();
        let wake = self.wake_tx.clone();
        self.pool
            .as_ref()
            .expect("submit_update requires the executor")
            .try_spawn_for(self.tenant, token, move |ctl| {
                let ctl = TrainControl::from_flag(ctl.flag());
                let trained =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.train(&ctl)))
                        .ok()
                        .map(Box::new);
                let _ = done.send(TrainOutcome::Update {
                    job,
                    reply,
                    started,
                    trained,
                });
                let _ = wake.try_send(Msg::Wake);
            })
            .expect("caller checked has_queue_capacity before preparing the plan");
    }

    /// Submits a prepared system-plane retrain to the executor.
    fn submit_retrain(&mut self, rjob: RetrainJob, embed_cfg: EmbedTrainConfig) {
        let job = self.next_job;
        self.next_job += 1;
        let token = CancelToken::new();
        self.retrain = Some(InFlight {
            job,
            token: token.clone(),
        });
        let done = self.done_tx.clone();
        let wake = self.wake_tx.clone();
        self.pool
            .as_ref()
            .expect("submit_retrain requires the executor")
            .try_spawn_for(self.tenant, token, move |ctl| {
                let ctl = TrainControl::from_flag(ctl.flag());
                let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    rjob.train(&embed_cfg, &ctl)
                })) {
                    Ok(Some(r)) => RetrainResult::Completed(Box::new(r)),
                    Ok(None) => RetrainResult::Cancelled,
                    Err(_) => RetrainResult::Panicked,
                };
                let _ = done.send(TrainOutcome::Retrain { job, result });
                let _ = wake.try_send(Msg::Wake);
            })
            .expect("caller checked has_queue_capacity before preparing the job");
    }

    /// Shutdown path: cancel whatever is in flight (jobs wind down at
    /// their next epoch boundary) and join the pool. In-flight clients
    /// observe `Unavailable` when their reply senders drop with the
    /// undrained completion channel.
    fn shutdown(&mut self) {
        if let Some(f) = self.update.take() {
            f.token.cancel();
        }
        if let Some(f) = self.retrain.take() {
            f.token.cancel();
        }
        drop(self.pool.take()); // joins the workers
    }
}

/// Clone-able client handle. Every call is synchronous: it enqueues the
/// request on the plane matching its classification and blocks on the
/// one-shot reply. [`DmsClient::metrics`] bypasses both queues entirely.
#[derive(Clone)]
pub struct DmsClient {
    write_tx: Sender<Msg>,
    read_tx: Sender<Msg>,
    next_id: Arc<AtomicU64>,
    shared: Arc<Shared>,
}

/// Join handle owning the server's lifetime: the worker threads run until
/// this handle is dropped or [`ServerHandle::shutdown`] is called. The
/// handle enqueues shutdown messages behind whatever is already queued, so
/// queued requests drain before the workers exit, and clients still alive
/// observe [`ServiceError::Unavailable`] from then on.
///
/// Dropping every [`DmsClient`] clone does *not* stop the server by
/// itself — the handle keeps the admission channels open so it can always
/// deliver its shutdown signal. Leaking the handle therefore leaks the
/// worker threads; drop it (or call `shutdown`) to end the deployment.
pub struct ServerHandle {
    actor: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    write_tx: Sender<Msg>,
    read_tx: Sender<Msg>,
    metrics: Arc<Metrics>,
}

impl ServerHandle {
    /// Metrics registry shared with the workers.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Signals shutdown, drains queued requests, and joins the workers.
    pub fn shutdown(self) {
        drop(self) // Drop does the work; this method exists for intent.
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Enqueue one shutdown per worker; sends fail harmlessly when a
        // worker is already gone (panic or all-clients-dropped exit).
        let _ = self.write_tx.send(Msg::Shutdown);
        for _ in &self.readers {
            let _ = self.read_tx.send(Msg::Shutdown);
        }
        if let Some(a) = self.actor.take() {
            let _ = a.join();
        }
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
    }
}

/// The server: spawns the mutating actor plus the snapshot-serving read
/// pool, and serves [`Request`]s until all clients disconnect.
pub struct DmsServer;

impl DmsServer {
    /// Spawns the actor and read pool and returns a client plus the join
    /// handle.
    ///
    /// The `trainer` carries the fairDS instance (trained or not), the
    /// Zoo, and the recommendation policy; `labeler` is the conventional
    /// (expensive) labeling fallback.
    pub fn spawn(
        trainer: RapidTrainer,
        labeler: FallbackLabeler,
        cfg: DmsServerConfig,
    ) -> (DmsClient, ServerHandle) {
        let pool = (cfg.training_pool_size > 0).then(|| {
            let pool = Arc::new(JobPool::new(cfg.training_pool_size, "fairdms-train"));
            pool.configure_tenant(
                DEFAULT_TENANT,
                TenantQueueConfig {
                    weight: 1,
                    capacity: cfg.training_queue_capacity,
                },
            );
            pool
        });
        Self::spawn_shared(trainer, labeler, cfg, pool, DEFAULT_TENANT)
    }

    /// Spawns a deployment that submits its training work to a caller-owned
    /// [`JobPool`] under `tenant` — the multi-tenant building block
    /// (DESIGN.md §14): N deployments share one pool (fair deficit-weighted
    /// round-robin across tenants) while keeping their own actor, read
    /// pool, snapshots, caches and metrics. The caller configures the
    /// tenant's weight and queue capacity on the pool
    /// ([`JobPool::configure_tenant`]) and keeps the pool alive for the
    /// deployments' lifetime; `pool: None` selects serialized mode exactly
    /// like `training_pool_size: 0`.
    pub fn spawn_shared(
        mut trainer: RapidTrainer,
        labeler: FallbackLabeler,
        cfg: DmsServerConfig,
        pool: Option<Arc<JobPool>>,
        tenant: TenantId,
    ) -> (DmsClient, ServerHandle) {
        let (write_tx, write_rx) = bounded::<Msg>(cfg.queue_capacity);
        let (read_tx, read_rx) = bounded::<Msg>(cfg.queue_capacity);
        // Size the data-reuse plane to the deployment's knobs (replacing
        // whatever the fairDS builder defaulted to) and expose its
        // counters through the metrics registry.
        trainer.fairds.configure_embed_cache(EmbedCacheConfig {
            capacity: cfg.embed_cache_capacity,
            shards: cfg.embed_cache_shards,
        });
        let metrics = Arc::new(Metrics::new());
        metrics.attach_embed_cache(Arc::clone(trainer.fairds.embed_cache()));
        metrics.attach_read_index(Arc::clone(trainer.fairds.read_index_counters()));
        if let Some(pool) = &pool {
            // Weak: the registry must not keep pool workers alive past the
            // owner's shutdown; the gauge just reads 0 afterwards.
            metrics.attach_training_pool(Arc::downgrade(pool), tenant);
        }
        let shared = Arc::new(Shared {
            view: SnapshotCell::new(Arc::new(ServiceView::of(&trainer))),
            metrics: Arc::clone(&metrics),
            poisoned: AtomicBool::new(false),
        });

        let read_pool = cfg.resolved_read_pool();
        let actor_shared = Arc::clone(&shared);
        let wake_tx = write_tx.clone();
        let actor = std::thread::Builder::new()
            .name("fairdms-actor".into())
            .spawn(move || {
                actor_loop(
                    trainer,
                    labeler,
                    cfg,
                    pool,
                    tenant,
                    write_rx,
                    wake_tx,
                    actor_shared,
                )
            })
            .expect("failed to spawn fairdms-actor thread");

        let readers = (0..read_pool)
            .map(|i| {
                let rx = read_rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fairdms-read-{i}"))
                    .spawn(move || read_loop(rx, shared))
                    .expect("failed to spawn fairdms read worker")
            })
            .collect();
        drop(read_rx);

        let client = DmsClient {
            write_tx: write_tx.clone(),
            read_tx: read_tx.clone(),
            next_id: Arc::new(AtomicU64::new(0)),
            shared,
        };
        (
            client,
            ServerHandle {
                actor: Some(actor),
                readers,
                write_tx,
                read_tx,
                metrics,
            },
        )
    }
}

fn validate_images(images: &Tensor) -> Result<(), ServiceError> {
    if images.shape().len() != 2 || images.shape()[0] == 0 {
        return Err(ServiceError::Invalid(format!(
            "expected non-empty [N, D] images, got shape {:?}",
            images.shape()
        )));
    }
    Ok(())
}

/// Width check shared by both planes: every image-bearing request must
/// match the embedder's input width *at admission* — reads check the
/// snapshot's frozen embedder, writes the builder's. Without this, a
/// mismatched batch would panic deep inside a forward pass (or, before
/// the `prepare_retrain` width guard, silently shear the training matrix)
/// — and a panic on the actor poisons the whole service. One bad client
/// batch must cost one `Invalid` reply, not the deployment.
fn validate_image_width(images: &Tensor, want: usize) -> Result<(), ServiceError> {
    if images.shape()[1] != want {
        return Err(ServiceError::Invalid(format!(
            "expected {} features per image, got {}",
            want,
            images.shape()[1]
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Read plane
// ---------------------------------------------------------------------

fn read_loop(rx: Receiver<Msg>, shared: Arc<Shared>) {
    while let Ok(msg) = rx.recv() {
        let env = match msg {
            Msg::Req(env) => env,
            Msg::Wake => continue, // training wakes target the actor only
            Msg::Shutdown => break,
        };
        // A panicking read would otherwise shrink the pool one thread at
        // a time until every read hangs on a dead channel; poisoning
        // instead fails the whole service loudly and consistently, the
        // same contract the actor has. Declared after `env` so the flag
        // is set before the reply sender disconnects (see actor_loop).
        let poison = PoisonOnPanic(Arc::clone(&shared));
        let op = env.req.op_name();
        let start = Instant::now();
        shared
            .metrics
            .queue_of(op)
            .record(start.saturating_duration_since(env.enqueued), true);
        let result = if shared.poisoned.load(Ordering::Acquire) {
            Err(ServiceError::Unavailable)
        } else {
            handle_read(&shared.view.load(), &shared.metrics, env.req)
        };
        shared
            .metrics
            .op(op)
            .record(start.elapsed(), result.is_ok());
        // A client that gave up (dropped its reply receiver) is not an
        // error; the work was already done.
        let _ = env.reply.send(result);
        drop(poison); // no panic this message
    }
}

/// Validates images against the fitted embedder's input width, turning
/// what would be a snapshot-side assertion panic into a client error.
fn validate_image_dim(images: &Tensor, sys: &Arc<SystemSnapshot>) -> Result<(), ServiceError> {
    validate_image_width(images, sys.embedder().input_dim())
}

/// Serves one read-only request from an immutable view. Never blocks on
/// the actor; every code path here takes `&self` on snapshot state.
fn handle_read(view: &ServiceView, metrics: &Metrics, req: Request) -> ServiceResult {
    match req {
        Request::DatasetPdf { images } => {
            validate_images(&images)?;
            let sys = view.system.as_ref().ok_or(ServiceError::NotReady)?;
            validate_image_dim(&images, sys)?;
            Ok(Reply::Pdf(sys.dataset_pdf(&images)))
        }
        Request::LookupMatching { pdf, count } => {
            let sys = view.system.as_ref().ok_or(ServiceError::NotReady)?;
            if pdf.len() != sys.k() {
                return Err(ServiceError::Invalid(format!(
                    "pdf length {} != k {}",
                    pdf.len(),
                    sys.k()
                )));
            }
            Ok(Reply::Documents(sys.lookup_matching(&pdf, count)))
        }
        Request::Certainty { images } => {
            validate_images(&images)?;
            let sys = view.system.as_ref().ok_or(ServiceError::NotReady)?;
            validate_image_dim(&images, sys)?;
            Ok(Reply::Certainty(sys.certainty(&images)))
        }
        Request::Recommend { pdf, top_k } => {
            // Validate instead of asserting: a panic here would poison the
            // whole read plane (see `ModelManager::new` / `jsd`'s input
            // assertions), turning one bad request or one misconfigured
            // trainer into a dead service.
            if !fairdms_core::jsd::is_valid_pdf_mass(&pdf) {
                return Err(ServiceError::Invalid(
                    "pdf must be non-empty, finite, non-negative mass with a positive sum".into(),
                ));
            }
            let Some(manager) = ModelManager::try_new(view.distance_threshold) else {
                return Err(ServiceError::Invalid(format!(
                    "configured distance threshold {} outside [0, 1]",
                    view.distance_threshold
                )));
            };
            if top_k == Some(0) {
                return Err(ServiceError::Invalid("top_k must be at least 1".into()));
            }
            let recommendation = match top_k {
                Some(k) => view.zoo.rank_top_k(&pdf, k),
                None => view.zoo.rank(&pdf),
            };
            let ranked = recommendation.map(|r| r.ranked).unwrap_or_default();
            // One ranking pass decides both fields: the best entry is the
            // ascending head whichever path produced it.
            let fine_tunable = ranked
                .first()
                .map(|&(_, div)| div <= manager.distance_threshold)
                .unwrap_or(false);
            Ok(Reply::Ranked(RankedModels {
                ranked,
                fine_tunable,
            }))
        }
        Request::FetchModel { zoo_id } => match view.zoo.get(zoo_id) {
            Some(entry) => Ok(Reply::Model {
                checkpoint: entry.checkpoint.clone(),
                pdf: entry.train_pdf.clone(),
            }),
            None => Err(ServiceError::UnknownModel(zoo_id)),
        },
        Request::Metrics => Ok(Reply::Metrics(metrics.snapshot())),
        other => unreachable!(
            "mutating request {:?} routed to the read plane",
            other.op_name()
        ),
    }
}

// ---------------------------------------------------------------------
// Write plane
// ---------------------------------------------------------------------

/// Per-actor state of the certainty monitor.
#[derive(Default)]
struct MonitorState {
    /// Monitored requests seen since the last triggered retrain.
    since_retrain: usize,
}

/// Marks the service poisoned if the actor unwinds (labeler panic etc.),
/// so read workers fail fast instead of serving an unmaintained state.
struct PoisonOnPanic(Arc<Shared>);

impl Drop for PoisonOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poisoned.store(true, Ordering::Release);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn actor_loop(
    mut trainer: RapidTrainer,
    mut labeler: FallbackLabeler,
    cfg: DmsServerConfig,
    pool: Option<Arc<JobPool>>,
    tenant: TenantId,
    rx: Receiver<Msg>,
    wake_tx: Sender<Msg>,
    shared: Arc<Shared>,
) {
    let mut monitor = MonitorState::default();
    let (done_tx, done_rx) = unbounded::<TrainOutcome>();
    let mut exec = TrainingExec {
        pool,
        tenant,
        done_tx,
        wake_tx,
        next_job: 0,
        update: None,
        retrain: None,
    };
    'serve: while let Ok(msg) = rx.recv() {
        // Completions first: a job that already finished must publish (or
        // be fenced) before any queued request is allowed to supersede it
        // retroactively, and its waiting client unblocks soonest. The
        // drain also runs on `Wake`, the training workers' nudge for an
        // otherwise idle actor.
        while let Ok(outcome) = done_rx.try_recv() {
            if handle_train_done(&mut trainer, &shared, &mut exec, outcome) {
                // A training job panicked: the same contract as a panic on
                // this thread — the service is poisoned and the write
                // plane stops, loudly.
                break 'serve;
            }
        }
        let env = match msg {
            Msg::Req(env) => env,
            Msg::Wake => continue,
            Msg::Shutdown => break,
        };
        let op = env.req.op_name();
        let start = Instant::now();
        shared
            .metrics
            .queue_of(op)
            .record(start.saturating_duration_since(env.enqueued), true);
        // Panic-poisoning order is handled *inside* handle_write (and
        // handle_train_done): the guard there is declared after the reply
        // sender, so an unwinding handler sets the poison flag before the
        // client's reply channel disconnects.
        match handle_write(
            &mut trainer,
            &mut labeler,
            &cfg,
            &mut monitor,
            env,
            &shared,
            &mut exec,
            start,
        ) {
            WriteOutcome::Reply(reply, result) => {
                shared
                    .metrics
                    .op(op)
                    .record(start.elapsed(), result.is_ok());
                let _ = reply.send(result);
            }
            // The reply sender travels with the training job; run time is
            // recorded at fenced completion.
            WriteOutcome::Deferred => {}
        }
    }
    // Shutdown: cancel in-flight jobs (they wind down at the next epoch
    // boundary) and join the executor. Undrained completions — and with
    // them the deferred reply senders — drop here, surfacing as
    // `Unavailable` at their clients.
    exec.shutdown();
}

/// Applies a completed training job on the actor: supersession and
/// version fencing first, then registration + publication, then (for
/// updates) the deferred reply. Returns `true` when the job *panicked* —
/// the actor must poison and stop, matching the contract of a panic on
/// the actor thread itself.
fn handle_train_done(
    trainer: &mut RapidTrainer,
    shared: &Arc<Shared>,
    exec: &mut TrainingExec,
    outcome: TrainOutcome,
) -> bool {
    match outcome {
        TrainOutcome::Update {
            job,
            reply,
            started,
            trained,
        } => {
            // Poison-before-reply-disconnect ordering, as in the request
            // path: declared after `reply` so an unwinding completion
            // (zoo/store panic) poisons the service before the client
            // observes `Unavailable`.
            let poison = PoisonOnPanic(Arc::clone(shared));
            let is_latest = exec.update.as_ref().map(|f| f.job) == Some(job);
            if is_latest {
                exec.update = None;
            }
            let Some(trained) = trained else {
                // The epoch loop panicked on the executor. Poison before
                // the reply leaves (same ordering contract as `poison`),
                // then tell the actor to stop.
                shared.poisoned.store(true, Ordering::Release);
                shared
                    .metrics
                    .op("update_model")
                    .record(started.elapsed(), false);
                let _ = reply.send(Err(ServiceError::Unavailable));
                drop(poison);
                return true;
            };
            let result: ServiceResult = if !is_latest || trained.cancelled() {
                // Cancelled (or displaced) by a newer trigger; counted
                // when the supersession happened.
                Err(ServiceError::Superseded)
            } else if trainer.fairds.snapshot().map(|s| s.version())
                != Some(trained.trained_from_version())
            {
                // Version fence: the system plane the job trained from
                // (its PDF key in particular) was replaced mid-flight; a
                // stale model must not be registered.
                shared
                    .metrics
                    .training_jobs_superseded
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Superseded)
            } else {
                let (net, report) = trainer
                    .complete_update(*trained)
                    .expect("cancellation checked above");
                shared
                    .metrics
                    .training_jobs_completed
                    .fetch_add(1, Ordering::Relaxed);
                // Publish-before-acknowledge: the new zoo entry goes live
                // before the updating client hears about it.
                shared.view.store(Arc::new(ServiceView::of(trainer)));
                Ok(Reply::Updated {
                    checkpoint: checkpoint::save(&net),
                    report,
                })
            };
            shared
                .metrics
                .op("update_model")
                .record(started.elapsed(), result.is_ok());
            let _ = reply.send(result);
            drop(poison);
            false
        }
        TrainOutcome::Retrain { job, result } => {
            let poison = PoisonOnPanic(Arc::clone(shared));
            let is_latest = exec.retrain.as_ref().map(|f| f.job) == Some(job);
            if is_latest {
                exec.retrain = None;
            }
            let fatal = match result {
                RetrainResult::Panicked => {
                    shared.poisoned.store(true, Ordering::Release);
                    true
                }
                // Cancelled jobs produced nothing; displaced jobs were
                // counted at supersession time. Both just drain.
                RetrainResult::Cancelled => false,
                RetrainResult::Completed(_) if !is_latest => false,
                RetrainResult::Completed(retrained) => {
                    if trainer.fairds.snapshot().map(|s| s.version())
                        == retrained.trained_from_version()
                    {
                        // O(copy) install: the job's shipped embeddings
                        // write back by DocId; only docs ingested while
                        // the job trained pay a fresh (delta) embed. The
                        // actor is occupied for O(store × copy), not
                        // O(store × forward-pass).
                        let install = trainer.fairds.install_retrained(*retrained);
                        shared
                            .metrics
                            .retrain_docs_copied
                            .fetch_add(install.copied as u64, Ordering::Relaxed);
                        shared
                            .metrics
                            .retrain_docs_delta_embedded
                            .fetch_add(install.delta_embedded as u64, Ordering::Relaxed);
                        shared
                            .metrics
                            .system_retrains
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .metrics
                            .training_jobs_completed
                            .fetch_add(1, Ordering::Relaxed);
                        shared.view.store(Arc::new(ServiceView::of(trainer)));
                    } else {
                        // Fence: e.g. a manual TrainSystem replaced the
                        // plane while the retrain was in flight.
                        shared
                            .metrics
                            .training_jobs_superseded
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    false
                }
            };
            drop(poison);
            fatal
        }
    }
}

/// Runs the certainty monitor on a batch; triggers a system-plane retrain
/// when it fires and the cooldown allows. Returns whether a retrain was
/// triggered.
///
/// Scheduling, by caller:
///
/// * **Ingest** (`force_inline: false`, executor mode): the retrain is
///   *submitted* and installs asynchronously after the fence. While one
///   retrain is already in flight, new triggers are **skipped rather than
///   superseding it** — every retrain refits the whole store, so the
///   running job is not stale, and superseding per drifted batch would
///   let a sustained drift stream cancel every retrain before it could
///   install (starvation). The next monitored batch after installation
///   re-evaluates the refreshed plane and re-triggers if drift remains.
/// * **UpdateModel** (`force_inline: true`): the retrain completes inline
///   on the actor before the update is prepared — the update's dataset
///   PDF and pseudo-labels must be computed under the refreshed plane,
///   and submitting it asynchronously would deterministically fence-
///   reject the caller's own update. Any in-flight ingest-triggered
///   retrain is superseded: the inline refit subsumes it.
/// * **Serialized mode** (`training_pool_size: 0`): always inline.
///
/// Degenerate planes (fewer than 4 samples across store + batch) cannot
/// be refit and never trigger.
fn monitor_and_maybe_retrain(
    trainer: &mut RapidTrainer,
    cfg: &DmsServerConfig,
    state: &mut MonitorState,
    images: &Tensor,
    shared: &Shared,
    exec: &mut TrainingExec,
    force_inline: bool,
) -> bool {
    if !cfg.auto_retrain || !trainer.fairds.is_ready() {
        return false;
    }
    state.since_retrain += 1;
    if state.since_retrain <= cfg.retrain_cooldown {
        return false;
    }
    let async_mode = exec.pool.is_some() && !force_inline;
    if async_mode && exec.retrain.is_some() {
        // One retrain at a time: let the running refit install instead of
        // cancelling it per drifted batch. The counter stays advanced, so
        // the next monitored batch re-checks immediately after install.
        return false;
    }
    if async_mode && !exec.has_queue_capacity() {
        // Bounded admission (DESIGN.md §14): the tenant's training queue
        // is full, so skip this trigger rather than grow the queue. The
        // counter stays advanced; the next monitored batch re-checks.
        return false;
    }
    if !trainer.fairds.needs_system_update(images) {
        return false;
    }
    let rjob = trainer.fairds.prepare_retrain(images);
    if rjob.sample_count() < 4 {
        return false; // nothing to refit on; trigger again when data exists
    }
    state.since_retrain = 0;
    shared
        .metrics
        .training_jobs_started
        .fetch_add(1, Ordering::Relaxed);
    if async_mode {
        exec.submit_retrain(rjob, cfg.retrain_embed_cfg.clone());
    } else {
        if exec.pool.is_some() {
            // The inline refit subsumes whatever was in flight.
            exec.supersede_retrain(&shared.metrics);
        }
        let trained = rjob
            .train(&cfg.retrain_embed_cfg, &TrainControl::new())
            .expect("uncancelled retrain always completes");
        // Inline retrains install through the same O(copy) path: nothing
        // was ingested between prepare and install (both ran in this
        // call), so the delta is empty and the write-back covers the
        // whole store.
        let install = trainer.fairds.install_retrained(trained);
        shared
            .metrics
            .retrain_docs_copied
            .fetch_add(install.copied as u64, Ordering::Relaxed);
        shared
            .metrics
            .retrain_docs_delta_embedded
            .fetch_add(install.delta_embedded as u64, Ordering::Relaxed);
        shared
            .metrics
            .system_retrains
            .fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .training_jobs_completed
            .fetch_add(1, Ordering::Relaxed);
    }
    true
}

/// What the actor does with a handled write: reply now, or let the reply
/// travel with a deferred training job.
// One short-lived value per handled write; boxing the reply to shrink the
// enum would cost an allocation on the hot path for no win.
#[allow(clippy::large_enum_variant)]
enum WriteOutcome {
    Reply(Sender<ServiceResult>, ServiceResult),
    Deferred,
}

#[allow(clippy::too_many_arguments)]
fn handle_write(
    trainer: &mut RapidTrainer,
    labeler: &mut FallbackLabeler,
    cfg: &DmsServerConfig,
    monitor: &mut MonitorState,
    env: Envelope,
    shared: &Arc<Shared>,
    exec: &mut TrainingExec,
    started: Instant,
) -> WriteOutcome {
    let Envelope { req, reply, .. } = env;
    // Declared *after* `reply`, so during a panic unwind it drops (and
    // sets the poison flag) *before* the reply sender disconnects: by the
    // time the panicking request surfaces as `Unavailable` at its client,
    // no follow-up read can slip through un-poisoned. Disarmed on normal
    // return (`Drop` only acts while panicking).
    let _poison = PoisonOnPanic(Arc::clone(shared));
    debug_assert!(
        !req.is_read_only(),
        "read op {} on the actor",
        req.op_name()
    );
    // Publish-before-acknowledge: freeze the post-mutation state into the
    // read plane *before* the reply leaves, so a client that hears an ack
    // (e.g. "retrained: true") can immediately read the new system plane.
    let publish = |trainer: &RapidTrainer| {
        shared.view.store(Arc::new(ServiceView::of(trainer)));
    };
    let result: ServiceResult = match req {
        Request::TrainSystem { images, embed_cfg } => {
            if let Err(e) = validate_images(&images)
                .and_then(|()| validate_image_width(&images, trainer.fairds.input_dim()))
            {
                return WriteOutcome::Reply(reply, Err(e));
            }
            // A manual (re)bootstrap replaces the plane that any
            // in-flight training job trained from; the version fence
            // would reject both kinds at completion anyway — cancel them
            // now instead of letting them burn executor time (and, on a
            // single-worker pool, block newly submitted jobs) on the way
            // to a deterministic rejection. The update's client answers
            // `Superseded`, exactly as it would have at the fence.
            exec.supersede_retrain(&shared.metrics);
            exec.supersede_update(&shared.metrics);
            let k = trainer.fairds.train_system(&images, &embed_cfg);
            publish(trainer);
            Ok(Reply::SystemTrained { k })
        }
        Request::IngestLabeled {
            images,
            labels,
            scan,
        } => (|| {
            validate_images(&images)?;
            validate_image_width(&images, trainer.fairds.input_dim())?;
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            if labels.shape()[0] != images.shape()[0] {
                return Err(ServiceError::Invalid(format!(
                    "label rows {} != image rows {}",
                    labels.shape()[0],
                    images.shape()[0]
                )));
            }
            let retrained =
                monitor_and_maybe_retrain(trainer, cfg, monitor, &images, shared, exec, false);
            let ids = trainer.fairds.ingest_labeled(&images, &labels, scan);
            if retrained && exec.pool.is_none() {
                // Serialized mode completed the retrain inline: model
                // changes need a republish. (Executor mode publishes at
                // install; store writes are visible to readers through
                // the shared collection either way.)
                publish(trainer);
            }
            Ok(Reply::Ingested {
                count: ids.len(),
                retrained,
            })
        })(),
        Request::PseudoLabel { images, threshold } => (|| {
            validate_images(&images)?;
            validate_image_width(&images, trainer.fairds.input_dim())?;
            if !trainer.fairds.is_ready() {
                return Err(ServiceError::NotReady);
            }
            let thr = if threshold.is_finite() {
                threshold
            } else {
                cfg.default_label_threshold
            };
            let (labels, stats) = trainer.fairds.pseudo_label(&images, thr, |p| labeler(p));
            Ok(Reply::Labeled { labels, stats })
        })(),
        Request::UpdateModel { images, scan } => {
            if let Err(e) = validate_images(&images)
                .and_then(|()| validate_image_width(&images, trainer.fairds.input_dim()))
            {
                return WriteOutcome::Reply(reply, Err(e));
            }
            if images.shape()[0] < 2 {
                // The update's train/validation split needs at least two
                // rows; a single sample would panic the epoch loop.
                return WriteOutcome::Reply(
                    reply,
                    Err(ServiceError::Invalid(
                        "UpdateModel needs at least 2 samples for its train/val split".into(),
                    )),
                );
            }
            if !trainer.fairds.is_ready() {
                return WriteOutcome::Reply(reply, Err(ServiceError::NotReady));
            }
            if exec.pool.is_some() && !exec.has_queue_capacity() {
                // Bounded admission (DESIGN.md §14): answer `Busy` before
                // the inline monitor, the O(ms) bookend work, and — most
                // importantly — before superseding: a flood answered
                // `Busy` must not cancel the legitimately in-flight
                // update. The client retries after backoff.
                return WriteOutcome::Reply(reply, Err(ServiceError::Busy));
            }
            // The monitor runs *inline* for updates (even in executor
            // mode): the update's PDF and pseudo-labels must be computed
            // under the refreshed plane, and an async retrain would
            // deterministically fence-reject this very request. Publish
            // the refreshed plane immediately — if the update is later
            // superseded, readers must still see the retrain.
            if monitor_and_maybe_retrain(trainer, cfg, monitor, &images, shared, exec, true) {
                publish(trainer);
            }
            shared
                .metrics
                .training_jobs_started
                .fetch_add(1, Ordering::Relaxed);
            if exec.pool.is_some() {
                // The actor does only the O(ms) bookend: PDF + pseudo-
                // labels + foundation resolution. The epoch loop runs on
                // the executor; a newer UpdateModel supersedes this one.
                let plan = trainer.prepare_update(&images, |p| labeler(p), scan);
                exec.supersede_update(&shared.metrics);
                exec.submit_update(plan, reply, started);
                return WriteOutcome::Deferred;
            }
            // Serialized mode: train inline, client waits out every epoch.
            let (net, report) = trainer.update_model(&images, |p| labeler(p), scan);
            shared
                .metrics
                .training_jobs_completed
                .fetch_add(1, Ordering::Relaxed);
            publish(trainer); // new zoo entry (+ possible retrain) goes live
            Ok(Reply::Updated {
                checkpoint: checkpoint::save(&net),
                report,
            })
        }
        Request::PublishModel {
            name,
            checkpoint,
            pdf,
            scan,
        } => (|| {
            // Full mass validation, not just non-emptiness: registration
            // normalizes the PDF into the ranking index
            // (`ModelZoo::add_shared`), whose assertions would otherwise
            // unwind the actor — and an actor panic poisons the whole
            // service.
            if !fairdms_core::jsd::is_valid_pdf_mass(&pdf) {
                return Err(ServiceError::Invalid(
                    "pdf must be non-empty, finite, non-negative mass with a positive sum".into(),
                ));
            }
            let arch = trainer.config().arch;
            let zoo_id = trainer.zoo.add(ZooEntry {
                name,
                arch,
                checkpoint,
                train_pdf: pdf,
                scan,
            });
            publish(trainer);
            Ok(Reply::Published { zoo_id })
        })(),
        other => unreachable!("read request {:?} routed to the actor", other.op_name()),
    };
    WriteOutcome::Reply(reply, result)
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

impl DmsClient {
    /// Sends a raw request and waits for the reply. Read-only requests go
    /// to the snapshot-serving pool, mutating requests to the actor.
    /// Returns [`ServiceError::Unavailable`] when the server is gone.
    pub fn call(&self, req: Request) -> ServiceResult {
        self.dispatch(req)?
            .recv()
            .map_err(|_| ServiceError::Unavailable)?
    }

    /// Enqueues a request and returns the one-shot reply receiver without
    /// waiting for completion — the wire plane's pipelining primitive
    /// (DESIGN.md §13): a connection's reader thread dispatches decoded
    /// requests as fast as they arrive while its reply sequencer awaits
    /// the receivers in admission order. Admission still applies
    /// backpressure: a full plane queue blocks this call until the
    /// request is accepted (counted in `backpressure_waits`), which is
    /// what propagates server overload back onto the socket.
    pub fn dispatch(&self, req: Request) -> Result<Receiver<ServiceResult>, ServiceError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tx = if req.is_read_only() {
            &self.read_tx
        } else {
            &self.write_tx
        };
        let (reply_tx, reply_rx) = bounded(1);
        let env = Msg::Req(Envelope {
            id,
            req,
            reply: reply_tx,
            // Queue wait is measured from here, so a backpressure block in
            // `send` below is (correctly) attributed to the queue.
            enqueued: Instant::now(),
        });
        match tx.try_send(env) {
            Ok(()) => {}
            Err(TrySendError::Full(env)) => {
                // Backpressure: block rather than reject when the queue is
                // merely full; reject only on disconnect. The block is
                // healthy flow control (`backpressure_waits`, counted only
                // once the blocked request is actually admitted); a failed
                // admission counts solely as `rejected`.
                if tx.send(env).is_err() {
                    self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::Unavailable);
                }
                self.shared
                    .metrics
                    .backpressure_waits
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Unavailable);
            }
        }
        Ok(reply_rx)
    }

    /// Bootstrap the system plane. Returns the fitted K.
    pub fn train_system(
        &self,
        images: Tensor,
        embed_cfg: EmbedTrainConfig,
    ) -> Result<usize, ServiceError> {
        match self.call(Request::TrainSystem { images, embed_cfg })? {
            Reply::SystemTrained { k } => Ok(k),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Ingest labeled data; returns `(count, retrained)`.
    pub fn ingest(
        &self,
        images: Tensor,
        labels: Tensor,
        scan: usize,
    ) -> Result<(usize, bool), ServiceError> {
        match self.call(Request::IngestLabeled {
            images,
            labels,
            scan,
        })? {
            Reply::Ingested { count, retrained } => Ok((count, retrained)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Dataset cluster PDF.
    pub fn dataset_pdf(&self, images: Tensor) -> Result<Vec<f64>, ServiceError> {
        match self.call(Request::DatasetPdf { images })? {
            Reply::Pdf(p) => Ok(p),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Pseudo-label with the server's fallback. Pass `f32::NAN` to use the
    /// server's default threshold.
    pub fn pseudo_label(
        &self,
        images: Tensor,
        threshold: f32,
    ) -> Result<(Tensor, fairdms_core::PseudoLabelStats), ServiceError> {
        match self.call(Request::PseudoLabel { images, threshold })? {
            Reply::Labeled { labels, stats } => Ok((labels, stats)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// PDF-matched document retrieval.
    pub fn lookup(
        &self,
        pdf: Vec<f64>,
        count: usize,
    ) -> Result<Vec<fairdms_datastore::Document>, ServiceError> {
        match self.call(Request::LookupMatching { pdf, count })? {
            Reply::Documents(d) => Ok(d),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Zoo ranking for a dataset PDF (the full, sorted ranking).
    pub fn recommend(&self, pdf: Vec<f64>) -> Result<RankedModels, ServiceError> {
        match self.call(Request::Recommend { pdf, top_k: None })? {
            Reply::Ranked(r) => Ok(r),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// The `k` lowest-divergence zoo entries for a dataset PDF, ascending
    /// — served by the snapshot's pruned partial-ranking path, which
    /// avoids sorting (and usually scoring) the whole zoo.
    pub fn recommend_top_k(&self, pdf: Vec<f64>, k: usize) -> Result<RankedModels, ServiceError> {
        match self.call(Request::Recommend {
            pdf,
            top_k: Some(k),
        })? {
            Reply::Ranked(r) => Ok(r),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Full rapid model update; returns `(checkpoint, report)`.
    pub fn update_model(
        &self,
        images: Tensor,
        scan: usize,
    ) -> Result<(Vec<u8>, fairdms_core::UpdateReport), ServiceError> {
        match self.call(Request::UpdateModel { images, scan })? {
            Reply::Updated { checkpoint, report } => Ok((checkpoint, report)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Publish an externally trained checkpoint.
    pub fn publish(
        &self,
        name: &str,
        checkpoint: Vec<u8>,
        pdf: Vec<f64>,
        scan: usize,
    ) -> Result<usize, ServiceError> {
        match self.call(Request::PublishModel {
            name: name.to_string(),
            checkpoint,
            pdf,
            scan,
        })? {
            Reply::Published { zoo_id } => Ok(zoo_id),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Fetch a checkpoint and its training PDF from the Zoo.
    pub fn fetch(&self, zoo_id: usize) -> Result<(Vec<u8>, Vec<f64>), ServiceError> {
        match self.call(Request::FetchModel { zoo_id })? {
            Reply::Model { checkpoint, pdf } => Ok((checkpoint, pdf)),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Fuzzy-clustering certainty of a dataset.
    pub fn certainty(&self, images: Tensor) -> Result<f64, ServiceError> {
        match self.call(Request::Certainty { images })? {
            Reply::Certainty(c) => Ok(c),
            other => unreachable!("mismatched reply {other:?}"),
        }
    }

    /// Server metrics snapshot, taken directly from the lock-free registry
    /// — no admission queue, no worker round-trip, works even while both
    /// planes are saturated. (`call(Request::Metrics)` still round-trips
    /// through the read pool for wire-protocol completeness.)
    pub fn metrics(&self) -> Result<crate::metrics::MetricsSnapshot, ServiceError> {
        Ok(self.shared.metrics.snapshot())
    }

    /// Serves a read-only request *on the calling thread* against the
    /// current read-plane snapshot — the wire plane's fast path
    /// (DESIGN.md §13): a connection's reader thread answers cheap reads
    /// directly instead of round-tripping through the read pool, saving
    /// two context switches per request. Records the same per-op metrics
    /// as the pool (with zero queue wait, since there is no queue), and
    /// poisons the service on panic exactly like a pool worker would.
    ///
    /// Callers must only pass requests for which
    /// [`Request::is_read_only`] holds; mutating requests would hit
    /// `handle_read`'s unreachable arm.
    pub(crate) fn serve_read_inline(&self, req: Request) -> ServiceResult {
        debug_assert!(req.is_read_only(), "inline path is for reads only");
        let poison = PoisonOnPanic(Arc::clone(&self.shared));
        let op = req.op_name();
        let start = Instant::now();
        self.shared
            .metrics
            .queue_of(op)
            .record(std::time::Duration::ZERO, true);
        let result = if self.shared.poisoned.load(Ordering::Acquire) {
            Err(ServiceError::Unavailable)
        } else {
            handle_read(&self.shared.view.load(), &self.shared.metrics, req)
        };
        self.shared
            .metrics
            .op(op)
            .record(start.elapsed(), result.is_ok());
        drop(poison); // no panic while serving
        result
    }

    /// The shared metrics registry. Crate-internal: the wire plane
    /// ([`crate::net`]) attaches its connection/frame counters here when a
    /// listener is spawned over this client.
    pub(crate) fn metrics_registry(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The currently-published read-plane view (None for `system` before
    /// training). Exposed for diagnostics and tests; the snapshot is
    /// immutable, so holding it never blocks the server.
    pub fn current_view(&self) -> Arc<ServiceView> {
        self.shared.view.load()
    }
}
