//! The tenant plane (DESIGN.md §14): N isolated experiment deployments
//! behind one service process, sharing one training executor and one wire
//! listener.
//!
//! The fairDMS paper deploys the service per-beamline, but one facility
//! runs many experiments at once — tomography, cookiebox, Bragg peak
//! scans — and giving each its own process wastes the training hardware
//! the service exists to arbitrate. [`MultiDms`] hosts them as *tenants*:
//!
//! * **Isolation** — each tenant owns a full deployment: its own mutation
//!   actor, read pool, [`crate::swap::SnapshotCell`] chain, embed cache,
//!   read index, model zoo and [`crate::metrics::Metrics`] registry. A
//!   publication, cache fill, or retrain in one tenant is invisible to
//!   every other; replies are bit-identical to the same tenant running
//!   solo (proven by `tests/tenant_differential.rs`).
//! * **Fair shared training** — all tenants submit background training
//!   jobs (`UpdateModel` fine-tunes, certainty retrains) to one
//!   [`JobPool`] that serves them by deficit-weighted round-robin, so a
//!   tenant flooding retrains cannot starve another's single update
//!   (bounded interleave; see `crates/flows/tests/fairness.rs`).
//!   Supersession remains per-tenant: tenant A's newer job can only ever
//!   cancel tenant A's older one, because cancel tokens never leave the
//!   deployment that minted them.
//! * **Admission quotas** — each tenant's training queue is bounded
//!   ([`TenantSpec::training_queue_capacity`]); a flood past the cap is
//!   answered [`crate::api::ServiceError::Busy`] instead of growing the
//!   queue, and each tenant keeps its own actor/read queue depths
//!   (`DmsServerConfig::queue_capacity`).
//! * **One wire plane** — [`MultiDms::serve_tcp`] publishes every tenant
//!   through a single listener; frames carry a tenant id and route to
//!   that tenant's client. Unknown tenants are answered `Invalid` on a
//!   live socket.

use crate::api::{Request, ServiceError, ServiceResult, TenantId};
use crate::net::{NetServerConfig, NetServerHandle, TenantRouter};
use crate::server::{DmsClient, DmsServer, DmsServerConfig, FallbackLabeler, ServerHandle};
use fairdms_core::workflow::RapidTrainer;
use fairdms_flows::jobs::{JobPool, TenantQueueConfig};
use std::io;
use std::sync::Arc;

/// Per-tenant deployment description for [`MultiDmsBuilder::tenant`].
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// The tenant's wire identity. Must be unique within one [`MultiDms`].
    pub id: TenantId,
    /// Fair-share weight in the shared training pool's deficit-weighted
    /// round-robin: a weight-3 tenant gets up to 3 jobs per sweep where a
    /// weight-1 tenant gets 1, when both are backlogged.
    pub weight: u32,
    /// Training-queue admission cap: jobs queued (not yet running) beyond
    /// this answer `Busy`. Bounds one tenant's memory and backlog without
    /// touching the others.
    pub training_queue_capacity: usize,
    /// The tenant's own deployment knobs (actor queue depth, read pool,
    /// retrain policy, caches…). `training_pool_size` is ignored — the
    /// pool is shared and sized by [`MultiDmsBuilder::new`].
    pub config: DmsServerConfig,
}

impl TenantSpec {
    /// A weight-1 tenant with default deployment knobs.
    pub fn new(id: TenantId) -> Self {
        let config = DmsServerConfig::default();
        TenantSpec {
            id,
            weight: 1,
            training_queue_capacity: config.training_queue_capacity,
            config,
        }
    }
}

/// Accumulates tenant deployments for [`MultiDms`]; see [`MultiDms::builder`].
pub struct MultiDmsBuilder {
    training_pool_size: usize,
    tenants: Vec<(TenantSpec, RapidTrainer, FallbackLabeler)>,
}

impl MultiDmsBuilder {
    /// Registers one tenant. Panics on a duplicate id at
    /// [`MultiDmsBuilder::spawn`] time.
    pub fn tenant(
        mut self,
        spec: TenantSpec,
        trainer: RapidTrainer,
        labeler: FallbackLabeler,
    ) -> Self {
        self.tenants.push((spec, trainer, labeler));
        self
    }

    /// Spawns every tenant's deployment around one shared training pool.
    /// Panics if no tenants were registered or two share an id.
    pub fn spawn(self) -> MultiDms {
        assert!(
            !self.tenants.is_empty(),
            "MultiDms needs at least one tenant"
        );
        let pool = (self.training_pool_size > 0)
            .then(|| Arc::new(JobPool::new(self.training_pool_size, "fairdms-train")));
        let mut tenants: Vec<(TenantId, DmsClient, ServerHandle)> =
            Vec::with_capacity(self.tenants.len());
        for (spec, trainer, labeler) in self.tenants {
            assert!(
                tenants.iter().all(|(id, _, _)| *id != spec.id),
                "duplicate tenant id {}",
                spec.id
            );
            if let Some(pool) = &pool {
                pool.configure_tenant(
                    spec.id,
                    TenantQueueConfig {
                        weight: spec.weight,
                        capacity: spec.training_queue_capacity,
                    },
                );
            }
            let mut cfg = spec.config;
            // The shared pool replaces the per-deployment one; a solo
            // `training_pool_size` here would be misleading dead config.
            cfg.training_pool_size = 0;
            cfg.training_queue_capacity = spec.training_queue_capacity;
            let (client, handle) =
                DmsServer::spawn_shared(trainer, labeler, cfg, pool.clone(), spec.id);
            tenants.push((spec.id, client, handle));
        }
        tenants.sort_by_key(|(id, _, _)| *id);
        MultiDms { tenants, pool }
    }
}

/// N isolated fairDMS deployments sharing one training pool and (via
/// [`MultiDms::serve_tcp`]) one wire listener. See the module docs for the
/// isolation and fairness contract.
pub struct MultiDms {
    tenants: Vec<(TenantId, DmsClient, ServerHandle)>,
    /// Shared training executor; `None` when built with pool size 0
    /// (every tenant trains inline on its actor — serialized mode).
    pool: Option<Arc<JobPool>>,
}

impl MultiDms {
    /// Starts a builder whose tenants share a `training_pool_size`-worker
    /// training executor (`0` ⇒ inline serialized training per tenant).
    pub fn builder(training_pool_size: usize) -> MultiDmsBuilder {
        MultiDmsBuilder {
            training_pool_size,
            tenants: Vec::new(),
        }
    }

    /// The in-process client for `tenant`, if registered.
    pub fn client(&self, tenant: TenantId) -> Option<&DmsClient> {
        self.tenants
            .binary_search_by_key(&tenant, |(id, _, _)| *id)
            .ok()
            .map(|i| &self.tenants[i].1)
    }

    /// Routes one request to its tenant's deployment. Unknown tenants
    /// answer [`ServiceError::Invalid`] — same contract as the wire plane.
    pub fn call(&self, tenant: TenantId, req: Request) -> ServiceResult {
        match self.client(tenant) {
            Some(client) => client.call(req),
            None => Err(ServiceError::Invalid(format!("unknown tenant {tenant}"))),
        }
    }

    /// All registered tenant ids, ascending.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.tenants.iter().map(|(id, _, _)| *id)
    }

    /// Jobs queued (not yet running) in `tenant`'s training lane; `0` for
    /// unknown tenants or serialized mode.
    pub fn training_jobs_queued(&self, tenant: TenantId) -> usize {
        self.pool.as_ref().map_or(0, |p| p.queued(tenant))
    }

    /// A wire router over every tenant, for
    /// [`crate::net::NetServer::serve_tcp_router`] /
    /// [`crate::net::NetServer::serve_uds_router`].
    pub fn router(&self) -> TenantRouter {
        TenantRouter::new(
            self.tenants
                .iter()
                .map(|(id, client, _)| (*id, client.clone()))
                .collect(),
        )
    }

    /// Serves every tenant over one TCP listener (frames route by their
    /// tenant header). Convenience over [`MultiDms::router`].
    pub fn serve_tcp(
        &self,
        addr: impl std::net::ToSocketAddrs,
        cfg: NetServerConfig,
    ) -> io::Result<NetServerHandle> {
        crate::net::NetServer::serve_tcp_router(self.router(), addr, cfg)
    }

    /// Shuts every tenant down (draining each deployment's queues), then
    /// joins the shared training pool's workers. Tenant order: ascending
    /// id. In-flight training jobs are cancelled at their next epoch
    /// boundary by each deployment's executor shutdown.
    pub fn shutdown(self) {
        for (_, client, handle) in self.tenants {
            drop(client);
            handle.shutdown();
        }
        // Last Arc ref: dropping it joins the pool's worker threads.
        drop(self.pool);
    }
}
