//! Lock-free request metrics.
//!
//! Every server operation records into per-operation [`OpStats`]: a count,
//! a total, a min/max, and a log₂-bucketed latency histogram — all plain
//! atomics so the hot path never takes a lock (recording is a handful of
//! `fetch_add`/`fetch_min` operations; see the "Rust Atomics and Locks"
//! guidance on statistics counters). Snapshots are taken with
//! `Ordering::Relaxed` loads: the numbers are monotone counters, so a torn
//! snapshot is at worst momentarily stale, never inconsistent in a way
//! that matters for reporting.
//!
//! Since the write plane went asynchronous, each operation tracks **two**
//! latency distributions instead of one:
//!
//! * **queue wait** — admission to dequeue: how long the request sat in
//!   (or blocked on) the plane's bounded queue before a worker picked it
//!   up. A saturated plane shows up here.
//! * **run** — dequeue to reply: how long the handler actually took. A
//!   slow handler shows up here. For a background training job this spans
//!   the whole job (prepare → epochs on the executor → fenced completion),
//!   so `update_model` run time still means "how long until my model was
//!   published", while every *other* op's run time stays milliseconds.
//!
//! The old single number conflated the two: once training moved off the
//! actor, "ingest took 3 s" could mean either a saturated queue or a slow
//! handler, and dashboards could not tell which plane to scale.

use fairdms_core::fairds::ReadIndexCounters;
use fairdms_core::reuse::{EmbedCache, EmbedCacheStats};
use fairdms_flows::jobs::{JobPool, TenantId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket *i* holds durations in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
pub const BUCKETS: usize = 24;

/// Atomic statistics for one operation kind.
#[derive(Debug)]
pub struct OpStats {
    count: AtomicU64,
    errors: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
}

impl Default for OpStats {
    fn default() -> Self {
        OpStats {
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            histogram: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(d: Duration) -> usize {
    let micros = d.as_micros().max(1) as u64;
    ((63 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl OpStats {
    /// Records one completed call.
    pub fn record(&self, elapsed: Duration, ok: bool) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.histogram[bucket_of(elapsed)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> OpSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        OpSnapshot {
            count,
            errors: self.errors.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: match self.min_ns.load(Ordering::Relaxed) {
                u64::MAX => 0,
                v => v,
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            histogram: std::array::from_fn(|i| self.histogram[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data copy of an [`OpStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Completed calls.
    pub count: u64,
    /// Calls that returned an error.
    pub errors: u64,
    /// Sum of service times in nanoseconds.
    pub total_ns: u64,
    /// Fastest call (0 when no calls yet).
    pub min_ns: u64,
    /// Slowest call.
    pub max_ns: u64,
    /// log₂-µs latency histogram.
    pub histogram: [u64; BUCKETS],
}

impl OpSnapshot {
    /// Mean service time, or zero when no calls completed.
    pub fn mean(&self) -> Duration {
        match self.total_ns.checked_div(self.count) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Approximate quantile from the histogram (upper bucket bound).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        Duration::from_nanos(self.max_ns)
    }
}

/// Operations tracked by the registry, in display order.
pub const OPS: [&str; 11] = [
    "train_system",
    "ingest",
    "pdf",
    "pseudo_label",
    "lookup",
    "recommend",
    "update_model",
    "publish",
    "fetch",
    "certainty",
    "metrics",
];

/// The server-wide metrics registry: run-time and queue-wait [`OpStats`]
/// per operation plus system-plane and training-executor counters.
#[derive(Debug, Default)]
pub struct Metrics {
    ops: [OpStats; OPS.len()],
    queue: [OpStats; OPS.len()],
    /// Certainty-triggered system-plane retrains that *completed and
    /// installed* (an asynchronously superseded retrain never counts).
    pub system_retrains: AtomicU64,
    /// Store documents installed by **copying** the retrain job's shipped
    /// embeddings/clusters back (the O(copy) install path — zero forward
    /// passes on the actor).
    pub retrain_docs_copied: AtomicU64,
    /// Store documents ingested mid-flight that a retrain install had to
    /// freshly embed in its delta batch. Persistently large values mean
    /// ingest outpaces retraining and the install is drifting back toward
    /// O(store) work on the actor.
    pub retrain_docs_delta_embedded: AtomicU64,
    /// Training jobs (model updates and system retrains) handed to the
    /// training executor — or run inline when the executor is disabled.
    pub training_jobs_started: AtomicU64,
    /// Training jobs whose result was published (model registered /
    /// system plane installed).
    pub training_jobs_completed: AtomicU64,
    /// Training jobs cancelled by a newer trigger for the same plane, or
    /// whose completed result was rejected by the version fence because
    /// the plane they trained from had been replaced mid-flight.
    pub training_jobs_superseded: AtomicU64,
    /// Admission-queue-full events where the client *blocked* until the
    /// queue drained and the request then proceeded normally. Healthy
    /// backpressure, not failure — dashboards alerting on request loss
    /// should watch [`Metrics::rejected`] instead. (Before this split the
    /// two were conflated under `rejected`.)
    pub backpressure_waits: AtomicU64,
    /// Requests that actually failed admission: the target plane's channel
    /// was disconnected (server shut down or its worker died), so the
    /// client observed `Unavailable`.
    pub rejected: AtomicU64,
    /// Handle onto the data-reuse plane's embedding cache, attached at
    /// server spawn so snapshots can report
    /// `embed_cache_{hits,misses,evictions,stale_generation}`. The cache
    /// keeps its own lock-free counters; this is a read-only view.
    embed_cache: OnceLock<Arc<EmbedCache>>,
    /// Handle onto the read plane's IVF index counters, attached at server
    /// spawn so snapshots report `read_index_{probes,balls_pruned,
    /// candidates_scanned}` (DESIGN.md §12). Read-only view, same contract
    /// as [`Metrics::attach_embed_cache`].
    read_index: OnceLock<Arc<ReadIndexCounters>>,
    /// Handle onto the wire plane's connection/frame counters, attached
    /// when a network listener is spawned over this deployment
    /// (DESIGN.md §13). Zeroed in snapshots until then.
    net: OnceLock<Arc<NetCounters>>,
    /// Weak handle onto the training [`JobPool`] plus this deployment's
    /// tenant id, attached at server spawn so snapshots report the
    /// `training_jobs_queued` gauge (DESIGN.md §14). Weak on purpose: the
    /// registry outlives the server teardown path and must not keep the
    /// pool's worker threads alive past shutdown.
    training_pool: OnceLock<(Weak<JobPool>, TenantId)>,
}

/// Lock-free counters of the wire plane (DESIGN.md §13): one instance per
/// deployment, shared by every listener's accept loop and every
/// connection's reader/writer threads. All monotone except
/// `connections_active`, a gauge.
#[derive(Debug, Default)]
pub struct NetCounters {
    connections_opened: AtomicU64,
    connections_active: AtomicU64,
    connections_busy_rejected: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    decode_errors: AtomicU64,
    drains_graceful: AtomicU64,
    drains_abrupt: AtomicU64,
}

impl NetCounters {
    /// A fresh, zeroed counter block.
    pub fn new() -> Self {
        NetCounters::default()
    }

    /// Records an accepted connection; returns the new active count
    /// (after increment), which the accept loop compares against the
    /// configured connection limit.
    pub fn conn_opened(&self) -> u64 {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current active-connection gauge.
    pub fn active(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Records a connection close with its drain outcome: `graceful` means
    /// every request read off the socket was answered (and flushed) before
    /// the close; abrupt means the peer vanished or the transport failed
    /// mid-stream and in-flight replies were discarded.
    pub fn conn_closed(&self, graceful: bool) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
        if graceful {
            self.drains_graceful.fetch_add(1, Ordering::Relaxed);
        } else {
            self.drains_abrupt.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an over-limit connection answered `Busy` and closed.
    pub fn busy_rejected(&self) {
        self.connections_busy_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one decoded inbound frame of `bytes` total wire bytes
    /// (header included).
    pub fn frame_in(&self, bytes: u64) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one written outbound frame of `bytes` total wire bytes.
    pub fn frame_out(&self, bytes: u64) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a frame or message that failed to decode (hostile length
    /// prefix, unknown tag, truncated payload).
    pub fn decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_busy_rejected: self.connections_busy_rejected.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            drains_graceful: self.drains_graceful.load(Ordering::Relaxed),
            drains_abrupt: self.drains_abrupt.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`NetCounters`], carried in every
/// [`MetricsSnapshot`] (zeroed when no listener is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the lifetime of the deployment
    /// (over-limit rejections not included).
    pub connections_opened: u64,
    /// Currently open connections (gauge).
    pub connections_active: u64,
    /// Connections answered [`crate::api::ServiceError::Busy`] at accept
    /// because the limit was reached.
    pub connections_busy_rejected: u64,
    /// Request frames decoded off sockets.
    pub frames_in: u64,
    /// Reply frames written to sockets.
    pub frames_out: u64,
    /// Total inbound wire bytes (frame headers included).
    pub bytes_in: u64,
    /// Total outbound wire bytes (frame headers included).
    pub bytes_out: u64,
    /// Frames/messages rejected by the decoder (each also ends its
    /// connection with a protocol-error frame).
    pub decode_errors: u64,
    /// Connections that closed with every accepted request answered.
    pub drains_graceful: u64,
    /// Connections torn down mid-stream (peer vanished, transport error).
    pub drains_abrupt: u64,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn idx(name: &str) -> usize {
        OPS.iter()
            .position(|&o| o == name)
            .unwrap_or_else(|| panic!("unknown op '{name}'"))
    }

    /// Run-time stats slot for an operation name (dequeue → reply); panics
    /// on unknown names (the set of operations is closed).
    pub fn op(&self, name: &str) -> &OpStats {
        &self.ops[Self::idx(name)]
    }

    /// Queue-wait stats slot for an operation name (admission → dequeue).
    pub fn queue_of(&self, name: &str) -> &OpStats {
        &self.queue[Self::idx(name)]
    }

    /// Attaches the deployment's embedding-reuse cache so its counters
    /// appear in every subsequent [`Metrics::snapshot`]. First attachment
    /// wins (the registry outlives any one cache swap).
    pub fn attach_embed_cache(&self, cache: Arc<EmbedCache>) {
        let _ = self.embed_cache.set(cache);
    }

    /// Attaches the deployment's read-index counters so IVF probe/prune
    /// statistics appear in every subsequent [`Metrics::snapshot`]. First
    /// attachment wins.
    pub fn attach_read_index(&self, counters: Arc<ReadIndexCounters>) {
        let _ = self.read_index.set(counters);
    }

    /// Attaches the deployment's wire-plane counters so connection/frame
    /// statistics appear in every subsequent [`Metrics::snapshot`]. First
    /// attachment wins: every listener spawned over the same deployment
    /// shares one counter block.
    pub fn attach_net(&self, counters: Arc<NetCounters>) {
        let _ = self.net.set(counters);
    }

    /// The attached wire-plane counters, if any listener was spawned.
    pub fn net_counters(&self) -> Option<&Arc<NetCounters>> {
        self.net.get()
    }

    /// Attaches the training pool this deployment submits to (and the
    /// tenant it submits as) so snapshots report the `training_jobs_queued`
    /// gauge. First attachment wins. The handle is weak; once the pool
    /// shuts down the gauge reads 0.
    pub fn attach_training_pool(&self, pool: Weak<JobPool>, tenant: TenantId) {
        let _ = self.training_pool.set((pool, tenant));
    }

    /// A point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            ops: OPS
                .iter()
                .map(|&name| (name, self.op(name).snapshot()))
                .collect(),
            queue: OPS
                .iter()
                .map(|&name| (name, self.queue_of(name).snapshot()))
                .collect(),
            system_retrains: self.system_retrains.load(Ordering::Relaxed),
            retrain_docs_copied: self.retrain_docs_copied.load(Ordering::Relaxed),
            retrain_docs_delta_embedded: self.retrain_docs_delta_embedded.load(Ordering::Relaxed),
            training_jobs_started: self.training_jobs_started.load(Ordering::Relaxed),
            training_jobs_completed: self.training_jobs_completed.load(Ordering::Relaxed),
            training_jobs_superseded: self.training_jobs_superseded.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            embed_cache: self
                .embed_cache
                .get()
                .map(|c| c.stats())
                .unwrap_or_default(),
            read_index_probes: self
                .read_index
                .get()
                .map(|c| c.probes())
                .unwrap_or_default(),
            read_index_balls_pruned: self
                .read_index
                .get()
                .map(|c| c.balls_pruned())
                .unwrap_or_default(),
            read_index_candidates_scanned: self
                .read_index
                .get()
                .map(|c| c.candidates_scanned())
                .unwrap_or_default(),
            net: self.net.get().map(|c| c.snapshot()).unwrap_or_default(),
            training_jobs_queued: self
                .training_pool
                .get()
                .and_then(|(pool, tenant)| pool.upgrade().map(|p| p.queued(*tenant) as u64))
                .unwrap_or_default(),
        }
    }
}

/// Plain-data copy of the whole registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Per-operation run-time snapshots (dequeue → reply), in [`OPS`]
    /// order.
    pub ops: Vec<(&'static str, OpSnapshot)>,
    /// Per-operation queue-wait snapshots (admission → dequeue), in
    /// [`OPS`] order.
    pub queue: Vec<(&'static str, OpSnapshot)>,
    /// Certainty-triggered system retrains installed so far.
    pub system_retrains: u64,
    /// Docs installed by copy across all retrain installs (see
    /// [`Metrics::retrain_docs_copied`]).
    pub retrain_docs_copied: u64,
    /// Docs freshly embedded by install delta batches (see
    /// [`Metrics::retrain_docs_delta_embedded`]).
    pub retrain_docs_delta_embedded: u64,
    /// Training jobs started (see [`Metrics::training_jobs_started`]).
    pub training_jobs_started: u64,
    /// Training jobs whose result was published.
    pub training_jobs_completed: u64,
    /// Training jobs cancelled by a newer trigger or rejected by the
    /// version fence.
    pub training_jobs_superseded: u64,
    /// Queue-full blocks where the request still succeeded (healthy
    /// backpressure).
    pub backpressure_waits: u64,
    /// Requests refused with `Unavailable` because the admission channel
    /// was disconnected.
    pub rejected: u64,
    /// Data-reuse plane counters
    /// (`embed_cache_{hits,misses,evictions,stale_generation}`), zeroed
    /// when no cache is attached.
    pub embed_cache: EmbedCacheStats,
    /// Read-index probes served (one per routed query); zeroed when no
    /// counters are attached.
    pub read_index_probes: u64,
    /// Balls discarded by triangle-inequality pruning across all probes.
    pub read_index_balls_pruned: u64,
    /// Candidate rows whose distances the GEMM batch actually evaluated
    /// (brute work would be `probes × cluster rows`; the gap is the
    /// read-index win).
    pub read_index_candidates_scanned: u64,
    /// Wire-plane connection/frame counters (DESIGN.md §13), zeroed when
    /// no network listener is attached to this deployment.
    pub net: NetStats,
    /// Training jobs admitted but not yet picked up by a pool worker — the
    /// bounded-admission gauge (DESIGN.md §14). Zeroed when no training
    /// pool is attached (serialized mode) or after pool shutdown.
    pub training_jobs_queued: u64,
}

impl MetricsSnapshot {
    /// Fraction of embedding probes served from the data-reuse cache
    /// (0 when idle or detached).
    pub fn embed_cache_hit_ratio(&self) -> f64 {
        self.embed_cache.hit_ratio()
    }

    /// Run-time snapshot for one operation.
    pub fn op(&self, name: &str) -> Option<&OpSnapshot> {
        self.ops.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Queue-wait snapshot for one operation.
    pub fn queue_op(&self, name: &str) -> Option<&OpSnapshot> {
        self.queue.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Total completed calls across operations.
    pub fn total_calls(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn record_accumulates() {
        let s = OpStats::default();
        s.record(Duration::from_micros(10), true);
        s.record(Duration::from_micros(30), false);
        let snap = s.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.mean(), Duration::from_micros(20));
        assert!(snap.min_ns <= snap.max_ns);
        assert_eq!(snap.histogram.iter().sum::<u64>(), 2);
    }

    #[test]
    fn bucketing_is_monotone_in_duration() {
        let mut prev = 0;
        for us in [1u64, 2, 4, 100, 10_000, 1_000_000] {
            let b = bucket_of(Duration::from_micros(us));
            assert!(b >= prev, "bucket({us}µs)={b} < {prev}");
            prev = b;
        }
        // Sub-microsecond and enormous durations stay in range.
        assert_eq!(bucket_of(Duration::from_nanos(1)), 0);
        assert!(bucket_of(Duration::from_secs(86_400)) < BUCKETS);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let s = OpStats::default();
        for us in 1..=1000u64 {
            s.record(Duration::from_micros(us), true);
        }
        let snap = s.snapshot();
        assert!(snap.quantile(0.5) <= snap.quantile(0.99));
        assert!(snap.quantile(1.0) >= Duration::from_micros(512));
        assert_eq!(OpSnapshot::default_zero().quantile(0.9), Duration::ZERO);
    }

    impl OpSnapshot {
        fn default_zero() -> Self {
            OpSnapshot {
                count: 0,
                errors: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
                histogram: [0; BUCKETS],
            }
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    m.op("pdf").record(Duration::from_micros(5), true);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().op("pdf").unwrap().count, 8000);
    }

    #[test]
    #[should_panic(expected = "unknown op")]
    fn unknown_op_panics() {
        Metrics::new().op("nope");
    }

    #[test]
    fn queue_wait_and_run_time_are_independent_distributions() {
        // The split exists so "slow op" can be attributed: a request that
        // waited 8 ms and ran 1 ms must not read the same as one that
        // waited 1 ms and ran 8 ms.
        let m = Metrics::new();
        m.queue_of("ingest").record(Duration::from_millis(8), true);
        m.op("ingest").record(Duration::from_millis(1), true);
        let snap = m.snapshot();
        let q = snap.queue_op("ingest").unwrap();
        let r = snap.op("ingest").unwrap();
        assert_eq!(q.count, 1);
        assert_eq!(r.count, 1);
        assert!(q.mean() > r.mean(), "queue {q:?} vs run {r:?}");
        // Ops without queue traffic stay zeroed.
        assert_eq!(snap.queue_op("pdf").unwrap().count, 0);
        assert_eq!(snap.training_jobs_started, 0);
        assert_eq!(snap.training_jobs_completed, 0);
        assert_eq!(snap.training_jobs_superseded, 0);
    }
}
