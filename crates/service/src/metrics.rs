//! Lock-free request metrics.
//!
//! Every server operation records its service time into a per-operation
//! [`OpStats`]: a count, a total, a min/max, and a log₂-bucketed latency
//! histogram — all plain atomics so the hot path never takes a lock
//! (recording is a handful of `fetch_add`/`fetch_min` operations; see the
//! "Rust Atomics and Locks" guidance on statistics counters). Snapshots
//! are taken with `Ordering::Relaxed` loads: the numbers are monotone
//! counters, so a torn snapshot is at worst momentarily stale, never
//! inconsistent in a way that matters for reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket *i* holds durations in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
pub const BUCKETS: usize = 24;

/// Atomic statistics for one operation kind.
#[derive(Debug)]
pub struct OpStats {
    count: AtomicU64,
    errors: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
}

impl Default for OpStats {
    fn default() -> Self {
        OpStats {
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            histogram: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(d: Duration) -> usize {
    let micros = d.as_micros().max(1) as u64;
    ((63 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl OpStats {
    /// Records one completed call.
    pub fn record(&self, elapsed: Duration, ok: bool) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.histogram[bucket_of(elapsed)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> OpSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        OpSnapshot {
            count,
            errors: self.errors.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: match self.min_ns.load(Ordering::Relaxed) {
                u64::MAX => 0,
                v => v,
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            histogram: std::array::from_fn(|i| self.histogram[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data copy of an [`OpStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Completed calls.
    pub count: u64,
    /// Calls that returned an error.
    pub errors: u64,
    /// Sum of service times in nanoseconds.
    pub total_ns: u64,
    /// Fastest call (0 when no calls yet).
    pub min_ns: u64,
    /// Slowest call.
    pub max_ns: u64,
    /// log₂-µs latency histogram.
    pub histogram: [u64; BUCKETS],
}

impl OpSnapshot {
    /// Mean service time, or zero when no calls completed.
    pub fn mean(&self) -> Duration {
        match self.total_ns.checked_div(self.count) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Approximate quantile from the histogram (upper bucket bound).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        Duration::from_nanos(self.max_ns)
    }
}

/// Operations tracked by the registry, in display order.
pub const OPS: [&str; 11] = [
    "train_system",
    "ingest",
    "pdf",
    "pseudo_label",
    "lookup",
    "recommend",
    "update_model",
    "publish",
    "fetch",
    "certainty",
    "metrics",
];

/// The server-wide metrics registry: one [`OpStats`] per operation plus
/// system-plane counters.
#[derive(Debug, Default)]
pub struct Metrics {
    ops: [OpStats; OPS.len()],
    /// Certainty-triggered system-plane retrains.
    pub system_retrains: AtomicU64,
    /// Admission-queue-full events where the client *blocked* until the
    /// queue drained and the request then proceeded normally. Healthy
    /// backpressure, not failure — dashboards alerting on request loss
    /// should watch [`Metrics::rejected`] instead. (Before this split the
    /// two were conflated under `rejected`.)
    pub backpressure_waits: AtomicU64,
    /// Requests that actually failed admission: the target plane's channel
    /// was disconnected (server shut down or its worker died), so the
    /// client observed `Unavailable`.
    pub rejected: AtomicU64,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Stats slot for an operation name; panics on unknown names (the set
    /// of operations is closed).
    pub fn op(&self, name: &str) -> &OpStats {
        let idx = OPS
            .iter()
            .position(|&o| o == name)
            .unwrap_or_else(|| panic!("unknown op '{name}'"));
        &self.ops[idx]
    }

    /// A point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            ops: OPS
                .iter()
                .map(|&name| (name, self.op(name).snapshot()))
                .collect(),
            system_retrains: self.system_retrains.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of the whole registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Per-operation snapshots, in [`OPS`] order.
    pub ops: Vec<(&'static str, OpSnapshot)>,
    /// Certainty-triggered system retrains so far.
    pub system_retrains: u64,
    /// Queue-full blocks where the request still succeeded (healthy
    /// backpressure).
    pub backpressure_waits: u64,
    /// Requests refused with `Unavailable` because the admission channel
    /// was disconnected.
    pub rejected: u64,
}

impl MetricsSnapshot {
    /// Snapshot for one operation.
    pub fn op(&self, name: &str) -> Option<&OpSnapshot> {
        self.ops.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Total completed calls across operations.
    pub fn total_calls(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn record_accumulates() {
        let s = OpStats::default();
        s.record(Duration::from_micros(10), true);
        s.record(Duration::from_micros(30), false);
        let snap = s.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.mean(), Duration::from_micros(20));
        assert!(snap.min_ns <= snap.max_ns);
        assert_eq!(snap.histogram.iter().sum::<u64>(), 2);
    }

    #[test]
    fn bucketing_is_monotone_in_duration() {
        let mut prev = 0;
        for us in [1u64, 2, 4, 100, 10_000, 1_000_000] {
            let b = bucket_of(Duration::from_micros(us));
            assert!(b >= prev, "bucket({us}µs)={b} < {prev}");
            prev = b;
        }
        // Sub-microsecond and enormous durations stay in range.
        assert_eq!(bucket_of(Duration::from_nanos(1)), 0);
        assert!(bucket_of(Duration::from_secs(86_400)) < BUCKETS);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let s = OpStats::default();
        for us in 1..=1000u64 {
            s.record(Duration::from_micros(us), true);
        }
        let snap = s.snapshot();
        assert!(snap.quantile(0.5) <= snap.quantile(0.99));
        assert!(snap.quantile(1.0) >= Duration::from_micros(512));
        assert_eq!(OpSnapshot::default_zero().quantile(0.9), Duration::ZERO);
    }

    impl OpSnapshot {
        fn default_zero() -> Self {
            OpSnapshot {
                count: 0,
                errors: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
                histogram: [0; BUCKETS],
            }
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    m.op("pdf").record(Duration::from_micros(5), true);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().op("pdf").unwrap().count, 8000);
    }

    #[test]
    #[should_panic(expected = "unknown op")]
    fn unknown_op_panics() {
        Metrics::new().op("nope");
    }
}
