//! Length-prefixed framing for the wire plane (DESIGN.md §13).
//!
//! Every message on a connection — either direction — is one frame:
//!
//! ```text
//! ┌────────────┬───────────┬────────────┬─────────┬──────────────────┐
//! │ u32 length │  u64 seq  │ u32 tenant │ u8 kind │     payload      │
//! │  (of body) │           │            │         │ (length−13 bytes)│
//! └────────────┴───────────┴────────────┴─────────┴──────────────────┘
//! ```
//!
//! all little-endian. `length` covers the body (seq + tenant + kind +
//! payload), not itself; `seq` is the connection-local request sequence
//! number, echoed on the matching reply; `tenant` addresses one tenant of
//! a multi-tenant deployment (DESIGN.md §14) and is echoed on the reply —
//! single-tenant clients send tenant 0. The decoder enforces a
//! configurable `max_frame_len` **before** allocating anything: a hostile
//! or corrupt length prefix answers [`FrameError::TooLong`] — which the
//! server turns into a protocol-error frame — instead of an unbounded
//! allocation. Frames shorter than the 13-byte body header are equally
//! rejected without being read.

use fairdms_datastore::wire::{Reader, WriteExt};
use std::io::{self, Read};

/// Bytes of the `u32` length prefix.
pub const LEN_PREFIX: usize = 4;
/// Bytes of the fixed body header (`u64` seq + `u32` tenant + `u8` kind).
pub const BODY_HEADER: usize = 13;

/// Frame kinds. Clients send only [`FrameKind::Request`]; the server
/// answers with one of the reply kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: an encoded [`crate::api::Request`].
    Request,
    /// Server → client: the encoded successful [`crate::api::Reply`] for
    /// the echoed `seq`.
    ReplyOk,
    /// Server → client: the encoded [`crate::api::ServiceError`] for the
    /// echoed `seq`.
    ReplyErr,
    /// Server → client: the connection limit was reached; sent once with
    /// `seq = 0` on an over-limit socket, which is then closed.
    Busy,
    /// Server → client: the peer broke the protocol (bad length, bad
    /// tag, undecodable message). Payload is a UTF-8 diagnostic; the
    /// connection closes after this frame.
    ProtocolError,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::ReplyOk => 2,
            FrameKind::ReplyErr => 3,
            FrameKind::Busy => 4,
            FrameKind::ProtocolError => 5,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => FrameKind::Request,
            2 => FrameKind::ReplyOk,
            3 => FrameKind::ReplyErr,
            4 => FrameKind::Busy,
            5 => FrameKind::ProtocolError,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Connection-local sequence number (echoed on replies).
    pub seq: u64,
    /// Addressed tenant (echoed on replies); 0 for single-tenant use.
    pub tenant: u32,
    /// Message kind.
    pub kind: FrameKind,
    /// Message payload (codec bytes; empty for `Busy`).
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly on a frame boundary (not an error).
    Eof,
    /// The transport failed (reset, timeout, mid-frame EOF).
    Io(io::Error),
    /// The length prefix exceeds the configured maximum — a hostile or
    /// corrupt peer; nothing was allocated or consumed past the prefix.
    TooLong {
        /// Declared body length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// The length prefix is smaller than the fixed body header.
    TooShort(u32),
    /// The kind byte is not a known [`FrameKind`].
    BadKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::TooLong { len, max } => {
                write!(f, "frame length {len} exceeds max_frame_len {max}")
            }
            FrameError::TooShort(len) => {
                write!(
                    f,
                    "frame length {len} below the {BODY_HEADER}-byte body header"
                )
            }
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
        }
    }
}

impl FrameError {
    /// Whether this error is the peer's fault (a protocol violation that
    /// deserves a [`FrameKind::ProtocolError`] answer) as opposed to a
    /// transport failure or clean close.
    pub fn is_protocol_violation(&self) -> bool {
        matches!(
            self,
            FrameError::TooLong { .. } | FrameError::TooShort(_) | FrameError::BadKind(_)
        )
    }
}

/// Appends one encoded frame to `out` and returns the frame's total wire
/// size in bytes.
pub fn write_frame(
    out: &mut Vec<u8>,
    seq: u64,
    tenant: u32,
    kind: FrameKind,
    payload: &[u8],
) -> usize {
    let body = BODY_HEADER + payload.len();
    assert!(body <= u32::MAX as usize, "frame body over u32::MAX bytes");
    out.put_u32(body as u32);
    out.put_u64(seq);
    out.put_u32(tenant);
    out.put_u8(kind.to_u8());
    out.extend_from_slice(payload);
    LEN_PREFIX + body
}

/// Reads one frame from `r`, enforcing `max_frame_len` on the declared
/// body length before any allocation. A clean EOF on the frame boundary
/// returns [`FrameError::Eof`]; EOF inside a frame is [`FrameError::Io`]
/// (the peer vanished mid-message).
pub fn read_frame(r: &mut impl Read, max_frame_len: u32) -> Result<Frame, FrameError> {
    let mut prefix = [0u8; LEN_PREFIX];
    // Distinguish boundary EOF (first byte missing) from a torn frame.
    let mut got = 0;
    while got < LEN_PREFIX {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len < BODY_HEADER as u32 {
        return Err(FrameError::TooShort(len));
    }
    if len > max_frame_len {
        return Err(FrameError::TooLong {
            len,
            max: max_frame_len,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    let mut rd = Reader::new(&body);
    let seq = rd.u64().expect("length checked");
    let tenant = rd.u32().expect("length checked");
    let kind_byte = rd.u8().expect("length checked");
    let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
    let payload = body.split_off(BODY_HEADER);
    Ok(Frame {
        seq,
        tenant,
        kind,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, 42, 7, FrameKind::Request, b"hello");
        assert_eq!(n, buf.len());
        let f = read_frame(&mut Cursor::new(&buf), 1024).unwrap();
        assert_eq!(f.seq, 42);
        assert_eq!(f.tenant, 7);
        assert_eq!(f.kind, FrameKind::Request);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocation() {
        // u32::MAX declared length: must answer TooLong, not OOM/panic.
        let buf = u32::MAX.to_le_bytes();
        match read_frame(&mut Cursor::new(&buf[..]), 1 << 20) {
            Err(FrameError::TooLong { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("expected TooLong, got {other:?}"),
        }
    }

    #[test]
    fn undersized_length_prefix_is_rejected() {
        let buf = 3u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf[..]), 1 << 20),
            Err(FrameError::TooShort(3))
        ));
    }

    #[test]
    fn eof_on_boundary_vs_inside_frame() {
        assert!(matches!(
            read_frame(&mut Cursor::new(&[][..]), 1024),
            Err(FrameError::Eof)
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 0, FrameKind::ReplyOk, b"xyz");
        for cut in 1..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut]), 1024).unwrap_err();
            assert!(
                matches!(err, FrameError::Io(_)),
                "cut at {cut}: {err:?} should be Io"
            );
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, 0, FrameKind::Busy, &[]);
        buf[LEN_PREFIX + 12] = 0xEE; // corrupt the kind byte
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1024),
            Err(FrameError::BadKind(0xEE))
        ));
    }
}
