//! Socket clients for the wire plane (DESIGN.md §13).
//!
//! Two layers:
//!
//! * [`PipelinedClient`] — the real machinery. One socket, one background
//!   reader thread, any number of cheap [`PipelinedClient::clone`]
//!   handles. [`PipelinedClient::submit`] encodes and writes a request
//!   frame and returns a [`Pending`] ticket *without waiting*; dozens of
//!   requests can be in flight on one connection and the server's reply
//!   sequencer answers them in order. Writes buffer in userspace —
//!   [`Pending::wait`] flushes lazily, so a pipelined burst pays one
//!   syscall, not one per request.
//! * [`DmsTcpClient`] — a drop-in mirror of
//!   [`crate::server::DmsClient`]'s blocking convenience API (same method
//!   names, same signatures) for code that wants the remote deployment to
//!   feel in-process. Each call is submit + wait on the wrapped
//!   [`PipelinedClient`], so even "synchronous" callers on different
//!   threads share the socket efficiently.
//!
//! ## Failure model
//!
//! The transport can die at any moment (server drain, peer reset, torn
//! frame). When the reader thread observes any terminal condition it
//! records a *sticky* [`ServiceError`] and answers every in-flight and
//! future request with it — a [`Pending::wait`] never hangs on a dead
//! connection. `Busy` frames (connection-limit rejection) surface as
//! [`ServiceError::Busy`]; protocol violations as
//! [`ServiceError::Protocol`]; everything else as
//! [`ServiceError::Unavailable`].

use crate::api::{RankedModels, Reply, Request, ServiceError, ServiceResult, TenantId};
use crate::metrics::MetricsSnapshot;
use crate::net::codec::{decode_error, decode_reply, encode_request};
use crate::net::frame::{read_frame, write_frame, FrameError, FrameKind};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use fairdms_core::embedding::EmbedTrainConfig;
use fairdms_core::PseudoLabelStats;
use fairdms_core::UpdateReport;
use fairdms_datastore::Document;
use fairdms_flows::jobs::DEFAULT_TENANT;
use fairdms_tensor::Tensor;
use parking_lot::Mutex;
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Frame-size cap a client accepts from the server. Replies carry model
/// checkpoints and label tensors, so this is generous; it exists to bound
/// memory against a corrupt length prefix, not to police the server.
const CLIENT_MAX_FRAME: u32 = 256 << 20;

/// Write half of a client connection (type-erased over TCP/UDS).
trait WriteHalf: Write + Send {
    /// Full-closes the socket so the reader thread unblocks.
    fn shut(&self);
}

impl WriteHalf for TcpStream {
    fn shut(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

#[cfg(unix)]
impl WriteHalf for std::os::unix::net::UnixStream {
    fn shut(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

/// Serialized writer state: frame encoding order on the socket equals
/// registration order with the reader, because both happen under this
/// lock.
struct WriterState {
    stream: io::BufWriter<Box<dyn WriteHalf>>,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest sequence number written into the buffer.
    written_seq: u64,
}

/// Terminal-failure state, shared between handles and the reader thread.
/// Split out of [`ClientInner`] so the reader does not keep the whole
/// client alive: connection teardown is driven by [`ClientInner`]'s drop,
/// which must run as soon as the last *handle* is gone.
struct ConnShared {
    /// Set once the connection is terminally dead.
    closed: AtomicBool,
    /// The sticky terminal error (populated before `closed` is set).
    error: Mutex<Option<ServiceError>>,
}

impl ConnShared {
    fn sticky_error(&self) -> ServiceError {
        self.error
            .lock()
            .clone()
            .unwrap_or(ServiceError::Unavailable)
    }
}

/// One in-flight registration handed to the reader: the request's
/// sequence number and the channel its reply resolves.
type PendingSlot = (u64, Sender<ServiceResult>);

struct ClientInner {
    writer: Mutex<WriterState>,
    /// Highest sequence number known flushed to the kernel.
    flushed_seq: AtomicU64,
    conn: Arc<ConnShared>,
    /// Registration channel to the reader thread, in seq order. `None`
    /// once teardown has begun.
    pending_tx: Mutex<Option<Sender<PendingSlot>>>,
    /// Reader thread handle, joined on teardown.
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // Sever the socket so a reader blocked mid-read unblocks, drop
        // the registration sender so a reader parked on its channel
        // unblocks, then join. Order matters: joining before dropping the
        // sender would deadlock an idle reader.
        self.writer.lock().stream.get_ref().shut();
        self.pending_tx.lock().take();
        let handle = self.reader.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// A pipelined, multi-handle client connection to a fairDMS wire-plane
/// listener. Cloning shares the socket; all clones' requests interleave
/// on one pipeline. See the module docs for the failure model.
#[derive(Clone)]
pub struct PipelinedClient {
    inner: Arc<ClientInner>,
    /// The tenant every frame from this handle addresses (DESIGN.md §14).
    /// Per-handle, not per-connection: [`PipelinedClient::for_tenant`]
    /// clones share the socket while talking to different tenants.
    tenant: TenantId,
}

/// An in-flight request ticket from [`PipelinedClient::submit`]. Redeem
/// with [`Pending::wait`]; dropping it abandons the reply (the connection
/// is unaffected).
pub struct Pending {
    seq: u64,
    rx: Receiver<ServiceResult>,
    inner: Arc<ClientInner>,
}

impl PipelinedClient {
    /// Connects over TCP, addressing tenant 0 (the single-tenant default).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_tcp_tenant(addr, DEFAULT_TENANT)
    }

    /// Connects over TCP, addressing `tenant` on a multi-tenant listener.
    pub fn connect_tcp_tenant(addr: impl ToSocketAddrs, tenant: TenantId) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Self::new(Box::new(stream), Box::new(read_half), tenant)
    }

    /// Connects over a Unix-domain socket, addressing tenant 0.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Self::connect_uds_tenant(path, DEFAULT_TENANT)
    }

    /// Connects over a Unix-domain socket, addressing `tenant`.
    #[cfg(unix)]
    pub fn connect_uds_tenant(
        path: impl AsRef<std::path::Path>,
        tenant: TenantId,
    ) -> io::Result<Self> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let read_half = stream.try_clone()?;
        Self::new(Box::new(stream), Box::new(read_half), tenant)
    }

    /// A handle sharing this connection (same socket, same pipeline)
    /// whose frames address `tenant` instead. Lets one physical
    /// connection interleave requests to several tenants.
    pub fn for_tenant(&self, tenant: TenantId) -> Self {
        PipelinedClient {
            inner: Arc::clone(&self.inner),
            tenant,
        }
    }

    /// The tenant this handle addresses.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    fn new(
        write_half: Box<dyn WriteHalf>,
        read_half: Box<dyn Read + Send>,
        tenant: TenantId,
    ) -> io::Result<Self> {
        let (pending_tx, pending_rx) = unbounded();
        let conn = Arc::new(ConnShared {
            closed: AtomicBool::new(false),
            error: Mutex::new(None),
        });
        let inner = Arc::new(ClientInner {
            writer: Mutex::new(WriterState {
                stream: io::BufWriter::with_capacity(64 * 1024, write_half),
                next_seq: 1,
                written_seq: 0,
            }),
            flushed_seq: AtomicU64::new(0),
            conn: Arc::clone(&conn),
            pending_tx: Mutex::new(Some(pending_tx)),
            reader: Mutex::new(None),
        });
        let reader = thread::Builder::new()
            .name("dms-net-client".into())
            .spawn(move || client_reader(conn, read_half, pending_rx))?;
        *inner.reader.lock() = Some(reader);
        Ok(PipelinedClient { inner, tenant })
    }

    /// Encodes `req`, queues it on the socket, and returns immediately
    /// with a ticket for its reply. The frame may sit in the userspace
    /// buffer until [`Pending::wait`] (or a later submit filling the
    /// buffer) flushes it.
    pub fn submit(&self, req: &Request) -> Pending {
        let (tx, rx) = bounded(1);
        let payload = encode_request(req);
        let mut w = self.inner.writer.lock();
        let seq = w.next_seq;
        w.next_seq += 1;
        let registered = if self.inner.conn.closed.load(Ordering::SeqCst) {
            false
        } else {
            // Register before writing: the reader must know about `seq`
            // before the server can possibly answer it. Channel order
            // equals seq order because both happen under the writer lock.
            match &*self.inner.pending_tx.lock() {
                Some(ptx) => ptx.send((seq, tx.clone())).is_ok(),
                None => false,
            }
        };
        if registered {
            let mut frame = Vec::with_capacity(payload.len() + 16);
            write_frame(&mut frame, seq, self.tenant, FrameKind::Request, &payload);
            if w.stream.write_all(&frame).is_err() {
                // The reader will observe the dead socket and answer this
                // (and everything else) with the sticky error.
                self.inner.conn.closed.store(true, Ordering::SeqCst);
            } else {
                w.written_seq = seq;
            }
        } else {
            let _ = tx.send(Err(self.inner.conn.sticky_error()));
        }
        drop(w);
        Pending {
            seq,
            rx,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Submit-and-wait in one step (window-1 pipelining).
    pub fn call(&self, req: &Request) -> ServiceResult {
        self.submit(req).wait()
    }

    /// Whether the connection has terminally failed (all further requests
    /// will answer the same sticky error without touching the socket).
    pub fn is_closed(&self) -> bool {
        self.inner.conn.closed.load(Ordering::SeqCst)
    }
}

impl ClientInner {
    /// Flushes buffered request frames through `seq`.
    fn flush_to(&self, seq: u64) {
        if self.flushed_seq.load(Ordering::SeqCst) >= seq {
            return;
        }
        let mut w = self.writer.lock();
        let written = w.written_seq;
        if self.flushed_seq.load(Ordering::SeqCst) >= seq {
            return; // raced with another waiter
        }
        if w.stream.flush().is_err() {
            self.conn.closed.store(true, Ordering::SeqCst);
            return;
        }
        self.flushed_seq.store(written, Ordering::SeqCst);
    }
}

impl Pending {
    /// Blocks until the reply arrives (flushing the request first if it
    /// is still buffered). Never hangs on a dead connection: terminal
    /// transport failures resolve every ticket with the sticky error.
    pub fn wait(self) -> ServiceResult {
        self.inner.flush_to(self.seq);
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(self.inner.conn.sticky_error()))
    }
}

/// The connection's reader thread: matches reply frames to pending
/// tickets in order; on any terminal condition, records the sticky error
/// and answers everything with it.
fn client_reader(
    conn: Arc<ConnShared>,
    read_half: Box<dyn Read + Send>,
    pending_rx: Receiver<PendingSlot>,
) {
    let mut r = BufReader::with_capacity(64 * 1024, read_half);
    // On a terminal condition, the ticket being served breaks out with the
    // loop so it can be answered with the sticky error *after* the error
    // is latched — dropping its sender early would race a waiter into
    // seeing `Unavailable` instead of the real cause.
    let (terminal, unanswered): (ServiceError, Option<Sender<ServiceResult>>) = loop {
        // Tickets arrive in seq order; the server answers in seq order.
        let (seq, tx) = match pending_rx.recv() {
            Ok(p) => p,
            Err(_) => return, // all handles dropped, nothing in flight
        };
        match read_frame(&mut r, CLIENT_MAX_FRAME) {
            Ok(frame) => {
                if frame.kind == FrameKind::Busy {
                    break (ServiceError::Busy, Some(tx));
                }
                if frame.kind == FrameKind::ProtocolError {
                    let msg = String::from_utf8_lossy(&frame.payload).into_owned();
                    break (
                        ServiceError::Protocol(format!("server rejected stream: {msg}")),
                        Some(tx),
                    );
                }
                if frame.seq != seq {
                    break (
                        ServiceError::Protocol(format!(
                            "reply seq {} arrived while waiting for {}",
                            frame.seq, seq
                        )),
                        Some(tx),
                    );
                }
                let result = match frame.kind {
                    FrameKind::ReplyOk => match decode_reply(&frame.payload) {
                        Ok(rep) => Ok(rep),
                        Err(e) => {
                            break (
                                ServiceError::Protocol(format!("undecodable reply: {e}")),
                                Some(tx),
                            )
                        }
                    },
                    FrameKind::ReplyErr => match decode_error(&frame.payload) {
                        Ok(err) => Err(err),
                        Err(e) => {
                            break (
                                ServiceError::Protocol(format!("undecodable error: {e}")),
                                Some(tx),
                            )
                        }
                    },
                    other => {
                        break (
                            ServiceError::Protocol(format!("unexpected {other:?} frame")),
                            Some(tx),
                        )
                    }
                };
                let _ = tx.send(result);
            }
            Err(FrameError::Eof) => break (ServiceError::Unavailable, Some(tx)),
            Err(FrameError::Io(_)) => break (ServiceError::Unavailable, Some(tx)),
            Err(e) => break (ServiceError::Protocol(e.to_string()), Some(tx)),
        }
    };
    // Terminal: latch the sticky error *before* marking closed so a
    // racing submit that sees `closed` reads a populated error, then
    // answer everything in flight (and everything still arriving) until
    // every handle is gone.
    *conn.error.lock() = Some(terminal.clone());
    conn.closed.store(true, Ordering::SeqCst);
    if let Some(tx) = unanswered {
        let _ = tx.send(Err(terminal.clone()));
    }
    while let Ok((_, tx)) = pending_rx.recv() {
        let _ = tx.send(Err(terminal.clone()));
    }
}

/// Blocking socket client mirroring [`crate::server::DmsClient`]'s
/// convenience API method-for-method, so application code can switch
/// between in-process and remote deployments by swapping the client type.
/// Internally a window-1 [`PipelinedClient`]; clone it (cheap) and call
/// from many threads to pipeline.
#[derive(Clone)]
pub struct DmsTcpClient {
    pipe: PipelinedClient,
}

impl DmsTcpClient {
    /// Connects over TCP, addressing tenant 0.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(DmsTcpClient {
            pipe: PipelinedClient::connect_tcp(addr)?,
        })
    }

    /// Connects over TCP, addressing `tenant` on a multi-tenant listener.
    pub fn connect_tenant(addr: impl ToSocketAddrs, tenant: TenantId) -> io::Result<Self> {
        Ok(DmsTcpClient {
            pipe: PipelinedClient::connect_tcp_tenant(addr, tenant)?,
        })
    }

    /// Connects over a Unix-domain socket, addressing tenant 0.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(DmsTcpClient {
            pipe: PipelinedClient::connect_uds(path)?,
        })
    }

    /// A handle sharing this connection whose requests address `tenant`.
    pub fn for_tenant(&self, tenant: TenantId) -> Self {
        DmsTcpClient {
            pipe: self.pipe.for_tenant(tenant),
        }
    }

    /// Wraps an existing pipelined connection (sharing its socket).
    pub fn from_pipelined(pipe: PipelinedClient) -> Self {
        DmsTcpClient { pipe }
    }

    /// The underlying pipelined connection.
    pub fn pipelined(&self) -> &PipelinedClient {
        &self.pipe
    }

    /// Sends one request and blocks for its reply.
    pub fn call(&self, req: &Request) -> ServiceResult {
        self.pipe.call(req)
    }

    /// Remote [`crate::server::DmsClient::train_system`].
    pub fn train_system(
        &self,
        images: Tensor,
        embed_cfg: EmbedTrainConfig,
    ) -> Result<usize, ServiceError> {
        match self.call(&Request::TrainSystem { images, embed_cfg })? {
            Reply::SystemTrained { k } => Ok(k),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::ingest`].
    pub fn ingest(
        &self,
        images: Tensor,
        labels: Tensor,
        scan: usize,
    ) -> Result<(usize, bool), ServiceError> {
        match self.call(&Request::IngestLabeled {
            images,
            labels,
            scan,
        })? {
            Reply::Ingested { count, retrained } => Ok((count, retrained)),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::dataset_pdf`].
    pub fn dataset_pdf(&self, images: Tensor) -> Result<Vec<f64>, ServiceError> {
        match self.call(&Request::DatasetPdf { images })? {
            Reply::Pdf(p) => Ok(p),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::pseudo_label`].
    pub fn pseudo_label(
        &self,
        images: Tensor,
        threshold: f32,
    ) -> Result<(Tensor, PseudoLabelStats), ServiceError> {
        match self.call(&Request::PseudoLabel { images, threshold })? {
            Reply::Labeled { labels, stats } => Ok((labels, stats)),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::lookup`].
    pub fn lookup(&self, pdf: Vec<f64>, count: usize) -> Result<Vec<Document>, ServiceError> {
        match self.call(&Request::LookupMatching { pdf, count })? {
            Reply::Documents(d) => Ok(d),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::recommend`].
    pub fn recommend(&self, pdf: Vec<f64>) -> Result<RankedModels, ServiceError> {
        match self.call(&Request::Recommend { pdf, top_k: None })? {
            Reply::Ranked(r) => Ok(r),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::recommend_top_k`].
    pub fn recommend_top_k(&self, pdf: Vec<f64>, k: usize) -> Result<RankedModels, ServiceError> {
        match self.call(&Request::Recommend {
            pdf,
            top_k: Some(k),
        })? {
            Reply::Ranked(r) => Ok(r),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::update_model`].
    pub fn update_model(
        &self,
        images: Tensor,
        scan: usize,
    ) -> Result<(Vec<u8>, UpdateReport), ServiceError> {
        match self.call(&Request::UpdateModel { images, scan })? {
            Reply::Updated { checkpoint, report } => Ok((checkpoint, report)),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::publish`].
    pub fn publish(
        &self,
        name: &str,
        checkpoint: Vec<u8>,
        pdf: Vec<f64>,
        scan: usize,
    ) -> Result<usize, ServiceError> {
        match self.call(&Request::PublishModel {
            name: name.to_string(),
            checkpoint,
            pdf,
            scan,
        })? {
            Reply::Published { zoo_id } => Ok(zoo_id),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::fetch`].
    pub fn fetch(&self, zoo_id: usize) -> Result<(Vec<u8>, Vec<f64>), ServiceError> {
        match self.call(&Request::FetchModel { zoo_id })? {
            Reply::Model { checkpoint, pdf } => Ok((checkpoint, pdf)),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote [`crate::server::DmsClient::certainty`].
    pub fn certainty(&self, images: Tensor) -> Result<f64, ServiceError> {
        match self.call(&Request::Certainty { images })? {
            Reply::Certainty(c) => Ok(c),
            other => Err(mismatch(&other)),
        }
    }

    /// Remote metrics snapshot (round-trips through the wire, unlike the
    /// in-process client's registry shortcut — the numbers are the same).
    pub fn metrics(&self) -> Result<MetricsSnapshot, ServiceError> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(m) => Ok(m),
            other => Err(mismatch(&other)),
        }
    }
}

/// A reply variant that doesn't match the request we sent: on the wire
/// that is a protocol fault, not a local invariant violation, so it
/// surfaces as an error instead of a panic.
fn mismatch(got: &Reply) -> ServiceError {
    ServiceError::Protocol(format!("mismatched reply variant for request: {got:?}"))
}
