//! The threaded, pipelined socket front-end of a fairDMS deployment
//! (DESIGN.md §13).
//!
//! [`NetServer::serve_tcp`] (and [`NetServer::serve_uds`] on Unix) bolts a
//! real listener onto an existing [`DmsClient`]. Each accepted connection
//! gets two threads:
//!
//! * a **reader** that decodes request frames and *immediately* dispatches
//!   them into the deployment's admission queues via
//!   [`DmsClient::dispatch`] — it never waits for a reply before reading
//!   the next frame, which is what makes the wire pipelined: a client can
//!   keep dozens of requests in flight on one socket and the read pool /
//!   mutation actor overlap them exactly as they do for in-process
//!   clients;
//! * a **writer** (the reply sequencer) that receives the one-shot reply
//!   receivers *in dispatch order* and writes each response back as it
//!   resolves, preserving request order on the wire. Writes are batched:
//!   the writer flushes only when its queue goes momentarily empty, so a
//!   burst of pipelined replies costs one syscall, not one per reply.
//!
//! Backpressure composes with the deployment's own admission control: a
//! reader blocked in `dispatch` (queue full) simply stops reading, which
//! fills the kernel socket buffer and eventually blocks the remote writer
//! — end-to-end flow control with no new machinery.
//!
//! The accept loop enforces [`NetServerConfig::max_connections`]:
//! over-limit sockets are *answered* — a `Busy` frame, flushed, then
//! close — never silently dropped. [`NetServerHandle::shutdown`] drains
//! gracefully: it stops the accept loop, half-closes every connection's
//! read side so readers observe EOF, and joins the writers, which answer
//! every already-accepted request before exiting.

use crate::api::{ServiceError, ServiceResult, TenantId};
use crate::metrics::NetCounters;
use crate::net::codec::{encode_error, encode_reply};
use crate::net::frame::{
    read_frame, write_frame, Frame, FrameError, FrameKind, BODY_HEADER, LEN_PREFIX,
};
use crate::server::DmsClient;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Stack size for connection reader/writer threads. They hold only frame
/// buffers, so the default 8 MiB would waste address space at kilo-client
/// scale.
const CONN_STACK: usize = 256 * 1024;

/// Wire-plane deployment knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Connections served concurrently; the `max_connections + 1`-th
    /// socket is answered [`ServiceError::Busy`] and closed.
    pub max_connections: usize,
    /// Largest accepted frame body in bytes ([`FrameError::TooLong`]
    /// above it). Bounds per-connection memory against hostile or corrupt
    /// length prefixes.
    pub max_frame_len: u32,
    /// `TCP_NODELAY` on accepted sockets (ignored for Unix sockets).
    /// Leave on: the writer already batches, so Nagle only adds latency.
    pub nodelay: bool,
    /// Serve read-only requests directly on the connection's reader
    /// thread against the read snapshot, instead of dispatching them to
    /// the read pool. Saves two context switches per read — the
    /// difference between ~2x and ~4x pipelining speedup in
    /// `benches/net_plane.rs` — at the cost of serializing one
    /// connection's reads behind each other (reads from *different*
    /// connections still run in parallel, one reader thread each). Turn
    /// off for workloads that pipeline many *expensive* reads on few
    /// connections and want the pool's intra-connection parallelism.
    pub inline_reads: bool,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 1024,
            max_frame_len: 64 << 20,
            nodelay: true,
            inline_reads: true,
        }
    }
}

/// Transport abstraction: TCP and Unix sockets differ only in these five
/// operations, so the accept loop and connection threads are written once.
trait NetStream: Read + Write + Send + Sized + 'static {
    /// A second handle onto the same socket (reader and writer threads
    /// each own one).
    fn duplicate(&self) -> io::Result<Self>;
    /// Half- or full-closes the socket.
    fn shut(&self, how: Shutdown) -> io::Result<()>;
    /// Applies `TCP_NODELAY` where it exists (no-op otherwise).
    fn set_nodelay_opt(&self, on: bool);
}

impl NetStream for TcpStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn shut(&self, how: Shutdown) -> io::Result<()> {
        self.shutdown(how)
    }
    fn set_nodelay_opt(&self, on: bool) {
        let _ = self.set_nodelay(on);
    }
}

#[cfg(unix)]
impl NetStream for std::os::unix::net::UnixStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn shut(&self, how: Shutdown) -> io::Result<()> {
        self.shutdown(how)
    }
    fn set_nodelay_opt(&self, _on: bool) {}
}

/// Listener side of the transport abstraction. Unblocking a thread parked
/// in `accept_stream` during drain is done with a throwaway
/// self-connection (see [`wake_listener`]) — the alternative to polling
/// with timeouts, which the repo's lint plane forbids.
trait NetListener: Send + 'static {
    /// Stream type this listener yields.
    type Stream: NetStream;
    /// Blocks for the next connection.
    fn accept_stream(&self) -> io::Result<Self::Stream>;
}

impl NetListener for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

#[cfg(unix)]
impl NetListener for std::os::unix::net::UnixListener {
    type Stream = std::os::unix::net::UnixStream;
    fn accept_stream(&self) -> io::Result<Self::Stream> {
        self.accept().map(|(s, _)| s)
    }
}

/// Routes each frame's tenant id to that tenant's in-process client — the
/// wire plane's half of the multi-tenant refactor (DESIGN.md §14). One
/// listener serves N isolated deployments; a frame addressed to a tenant
/// the router does not know is *answered* (`Invalid`), never dropped.
///
/// Tenant counts are small (one per live experiment), so a sorted slice
/// beats a hash map and keeps lookup allocation-free on the reader's hot
/// path.
#[derive(Clone)]
pub struct TenantRouter {
    tenants: Arc<[(TenantId, DmsClient)]>,
}

impl TenantRouter {
    /// A single-tenant router: every deployment so far is "tenant 0".
    pub fn single(client: DmsClient) -> Self {
        TenantRouter::new(vec![(0, client)])
    }

    /// A router over explicit `(tenant, client)` pairs. Panics on
    /// duplicate tenant ids (two deployments claiming one id is a wiring
    /// bug, not a runtime condition) or an empty set.
    pub fn new(mut tenants: Vec<(TenantId, DmsClient)>) -> Self {
        assert!(!tenants.is_empty(), "router needs at least one tenant");
        tenants.sort_by_key(|(id, _)| *id);
        assert!(
            tenants.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate tenant id in router"
        );
        TenantRouter {
            tenants: tenants.into(),
        }
    }

    /// The client owning `tenant`, if registered.
    pub fn client(&self, tenant: TenantId) -> Option<&DmsClient> {
        self.tenants
            .binary_search_by_key(&tenant, |(id, _)| *id)
            .ok()
            .map(|i| &self.tenants[i].1)
    }

    /// All registered tenants, ascending.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.tenants.iter().map(|(id, _)| *id)
    }
}

/// What the reader hands the reply sequencer, in dispatch order. Every
/// variant echoes the request's `seq` and `tenant` on its reply frame.
enum OutMsg {
    /// A dispatched request: echo `seq` on whatever the service resolves.
    Reply {
        seq: u64,
        tenant: TenantId,
        rx: Receiver<ServiceResult>,
    },
    /// A request already served on the reader thread (the inline-read
    /// fast path): the sequencer never waits on these. Boxed so the
    /// queued message stays channel-slot-sized regardless of reply size.
    Ready {
        seq: u64,
        tenant: TenantId,
        result: Box<ServiceResult>,
    },
    /// The peer broke the protocol: answer with a `ProtocolError` frame
    /// (after everything queued before it) and close.
    Fatal {
        seq: u64,
        tenant: TenantId,
        msg: String,
    },
}

/// State shared by one connection's two threads.
struct ConnState {
    /// Set by the reader when the peer closed cleanly on a frame boundary
    /// or the server drained it; a close without this is abrupt.
    clean_eof: AtomicBool,
}

/// Everything the accept loop and connection threads share.
struct NetShared {
    router: TenantRouter,
    cfg: NetServerConfig,
    counters: Arc<NetCounters>,
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<u64, Conn>>,
}

/// Registry entry for one live connection (type-erased over transports).
struct Conn {
    /// Half-closes the read side, making the reader observe EOF.
    drain: Box<dyn Fn() + Send>,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
    /// Set by the writer as its last act, so the accept loop can reap.
    finished: Arc<AtomicBool>,
}

/// Entry points for serving a deployment over real sockets.
pub struct NetServer;

impl NetServer {
    /// Serves `client`'s deployment over TCP as tenant 0. Binds `addr`
    /// (use port 0 for an ephemeral port, then
    /// [`NetServerHandle::local_addr`]) and returns once the listener is
    /// live.
    pub fn serve_tcp(
        client: DmsClient,
        addr: impl ToSocketAddrs,
        cfg: NetServerConfig,
    ) -> io::Result<NetServerHandle> {
        Self::serve_tcp_router(TenantRouter::single(client), addr, cfg)
    }

    /// Serves every tenant of `router` over one TCP listener
    /// (DESIGN.md §14): frames route by their tenant header; unknown
    /// tenants are answered `Invalid` on a live socket.
    pub fn serve_tcp_router(
        router: TenantRouter,
        addr: impl ToSocketAddrs,
        cfg: NetServerConfig,
    ) -> io::Result<NetServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let handle = spawn_accept(router, listener, cfg)?;
        Ok(NetServerHandle {
            local_addr: Some(local),
            #[cfg(unix)]
            uds_path: None,
            ..handle
        })
    }

    /// Serves `client`'s deployment over a Unix-domain socket at `path`
    /// (removed on [`NetServerHandle::shutdown`]) as tenant 0. Binding
    /// fails if the path exists.
    #[cfg(unix)]
    pub fn serve_uds(
        client: DmsClient,
        path: impl Into<std::path::PathBuf>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServerHandle> {
        Self::serve_uds_router(TenantRouter::single(client), path, cfg)
    }

    /// Serves every tenant of `router` over one Unix-domain socket.
    #[cfg(unix)]
    pub fn serve_uds_router(
        router: TenantRouter,
        path: impl Into<std::path::PathBuf>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServerHandle> {
        let path = path.into();
        let listener = std::os::unix::net::UnixListener::bind(&path)?;
        let handle = spawn_accept(router, listener, cfg)?;
        Ok(NetServerHandle {
            uds_path: Some(path),
            ..handle
        })
    }
}

fn spawn_accept<L: NetListener>(
    router: TenantRouter,
    listener: L,
    cfg: NetServerConfig,
) -> io::Result<NetServerHandle> {
    let counters = Arc::new(NetCounters::new());
    // Attach to every tenant's registry so `Request::Metrics` (from any
    // client, local or remote, against any tenant) reports wire traffic.
    // The wire counters are deliberately *shared* across tenants — one
    // listener, one set of sockets — while everything else in a tenant's
    // snapshot stays isolated. First listener wins per registry; later
    // listeners keep their own counters but snapshots follow the first —
    // one deployment, one wire plane, is the intended topology.
    for tenant in router.tenants() {
        if let Some(client) = router.client(tenant) {
            client.metrics_registry().attach_net(Arc::clone(&counters));
        }
    }
    let shared = Arc::new(NetShared {
        router,
        cfg,
        counters: Arc::clone(&counters),
        shutting_down: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = thread::Builder::new()
        .name("dms-net-accept".into())
        .spawn(move || accept_loop(accept_shared, listener))?;
    Ok(NetServerHandle {
        shared,
        accept: Some(accept),
        counters,
        local_addr: None,
        #[cfg(unix)]
        uds_path: None,
    })
}

fn accept_loop<L: NetListener>(shared: Arc<NetShared>, listener: L) {
    let mut next_conn_id = 0u64;
    let mut consecutive_errors = 0u32;
    loop {
        let stream = match listener.accept_stream() {
            Ok(s) => s,
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => break,
            Err(_) => {
                // Transient accept errors (ECONNABORTED, EMFILE bursts)
                // are retried; a listener that only ever errors is dead
                // and spinning on it would burn a core.
                consecutive_errors += 1;
                if consecutive_errors > 64 {
                    break;
                }
                continue;
            }
        };
        consecutive_errors = 0;
        if shared.shutting_down.load(Ordering::SeqCst) {
            // Either the drain's self-connect wake or a client racing the
            // drain; both get a clean close.
            break;
        }
        reap_finished(&shared);
        if shared.counters.active() >= shared.cfg.max_connections as u64 {
            reject_busy(&shared, stream);
            continue;
        }
        shared.counters.conn_opened();
        next_conn_id += 1;
        if let Err(e) = spawn_connection(&shared, next_conn_id, stream) {
            // Thread spawn failed (fd/thread exhaustion): undo the gauge
            // and keep serving existing connections.
            shared.counters.conn_closed(false);
            let _ = e;
        }
    }
}

/// Joins connections whose writer finished, keeping the registry bounded
/// by *live* connections rather than lifetime connections.
fn reap_finished(shared: &NetShared) {
    let mut done = Vec::new();
    {
        let mut conns = shared.conns.lock();
        let ids: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.finished.load(Ordering::SeqCst))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            if let Some(conn) = conns.remove(&id) {
                done.push(conn);
            }
        }
    }
    for conn in done {
        let _ = conn.reader.join();
        let _ = conn.writer.join();
    }
}

/// Answers an over-limit socket with a `Busy` frame and closes it.
fn reject_busy<S: NetStream>(shared: &NetShared, mut stream: S) {
    shared.counters.busy_rejected();
    let mut buf = Vec::with_capacity(LEN_PREFIX + BODY_HEADER);
    let n = write_frame(&mut buf, 0, 0, FrameKind::Busy, &[]);
    if stream.write_all(&buf).and_then(|()| stream.flush()).is_ok() {
        shared.counters.frame_out(n as u64);
    }
    let _ = stream.shut(Shutdown::Both);
}

fn spawn_connection<S: NetStream>(
    shared: &Arc<NetShared>,
    conn_id: u64,
    stream: S,
) -> io::Result<()> {
    stream.set_nodelay_opt(shared.cfg.nodelay);
    let write_half = stream.duplicate()?;
    let drain_half = stream.duplicate()?;
    let (out_tx, out_rx) = unbounded::<OutMsg>();
    let state = Arc::new(ConnState {
        clean_eof: AtomicBool::new(false),
    });
    let finished = Arc::new(AtomicBool::new(false));

    let reader = {
        let shared = Arc::clone(shared);
        let state = Arc::clone(&state);
        thread::Builder::new()
            .name(format!("dms-net-r{conn_id}"))
            .stack_size(CONN_STACK)
            .spawn(move || reader_loop(shared, stream, out_tx, state))?
    };
    let writer = {
        let shared = Arc::clone(shared);
        let state = Arc::clone(&state);
        let finished = Arc::clone(&finished);
        thread::Builder::new()
            .name(format!("dms-net-w{conn_id}"))
            .stack_size(CONN_STACK)
            .spawn(move || {
                // Armed before the first byte moves: the admission slot
                // (`connections_active`) and the reap flag are released on
                // *every* exit path, including a panic inside the writer
                // (say, a codec assertion while encoding a reply). Without
                // the guard a panicking writer leaked its slot forever;
                // enough of them and the accept loop answers Busy to every
                // future peer — a permanent brown-out from transient
                // failures.
                let mut teardown = ConnTeardown {
                    shared: &shared,
                    finished: &finished,
                    graceful: false,
                };
                teardown.graceful = writer_loop(&shared, write_half, out_rx, &state);
            })
    };
    let writer = match writer {
        Ok(w) => w,
        Err(e) => {
            // Reader is already running; sever its socket so it exits.
            let _ = drain_half.shut(Shutdown::Both);
            let _ = reader.join();
            return Err(e);
        }
    };
    shared.conns.lock().insert(
        conn_id,
        Conn {
            drain: Box::new(move || {
                let _ = drain_half.shut(Shutdown::Read);
            }),
            reader,
            writer,
            finished,
        },
    );
    Ok(())
}

/// Decodes frames and dispatches them without waiting for replies — the
/// pipelining half of the connection.
fn reader_loop<S: NetStream>(
    shared: Arc<NetShared>,
    stream: S,
    out_tx: Sender<OutMsg>,
    state: Arc<ConnState>,
) {
    let mut r = BufReader::with_capacity(64 * 1024, stream);
    loop {
        let frame = match read_frame(&mut r, shared.cfg.max_frame_len) {
            Ok(f) => f,
            Err(FrameError::Eof) => {
                state.clean_eof.store(true, Ordering::SeqCst);
                break;
            }
            Err(e) if e.is_protocol_violation() => {
                shared.counters.decode_error();
                let _ = out_tx.send(OutMsg::Fatal {
                    seq: 0,
                    tenant: 0,
                    msg: e.to_string(),
                });
                break;
            }
            Err(_) => break, // transport error: abrupt
        };
        shared
            .counters
            .frame_in((LEN_PREFIX + BODY_HEADER + frame.payload.len()) as u64);
        if let Err(fatal) = handle_frame(&shared, frame, &out_tx) {
            shared.counters.decode_error();
            let _ = out_tx.send(fatal);
            break;
        }
    }
    // Dropping out_tx is the writer's signal that no more requests are
    // coming; it answers what's queued, then exits.
}

/// Dispatches one decoded frame, or returns the fatal message that ends
/// the connection.
fn handle_frame(shared: &NetShared, frame: Frame, out_tx: &Sender<OutMsg>) -> Result<(), OutMsg> {
    let Frame {
        seq,
        tenant,
        kind,
        payload,
    } = frame;
    if kind != FrameKind::Request {
        return Err(OutMsg::Fatal {
            seq,
            tenant,
            msg: format!("unexpected {kind:?} frame from client"),
        });
    }
    let req = crate::net::codec::decode_request(&payload).map_err(|e| OutMsg::Fatal {
        seq,
        tenant,
        msg: e.to_string(),
    })?;
    let Some(client) = shared.router.client(tenant) else {
        // Unknown tenant: a well-formed request to a mis-addressed (or
        // already retired) tenant is the *request's* problem, not the
        // connection's — answer `Invalid` and keep the socket up, so one
        // typo'd tenant id in a pipelined stream doesn't kill the other
        // tenants sharing the connection.
        let _ = out_tx.send(OutMsg::Ready {
            seq,
            tenant,
            result: Box::new(Err(ServiceError::Invalid(format!(
                "unknown tenant {tenant}"
            )))),
        });
        return Ok(());
    };
    if shared.cfg.inline_reads && req.is_read_only() {
        // Fast path: answer on this thread from the read snapshot. The
        // writer receives a resolved reply and never parks for it.
        let result = client.serve_read_inline(req);
        let _ = out_tx.send(OutMsg::Ready {
            seq,
            tenant,
            result: Box::new(result),
        });
        return Ok(());
    }
    match client.dispatch(req) {
        Ok(rx) => {
            let _ = out_tx.send(OutMsg::Reply { seq, tenant, rx });
            Ok(())
        }
        Err(e) => {
            // Admission failed (service shutting down): answer this
            // request with the error; the connection itself stays up.
            let (tx, rx) = crossbeam_channel::bounded(1);
            let _ = tx.send(Err(e));
            let _ = out_tx.send(OutMsg::Reply { seq, tenant, rx });
            Ok(())
        }
    }
}

/// Releases one connection's admission accounting exactly once, on every
/// writer exit path — normal return *and* unwind. `graceful` is updated
/// from [`writer_loop`]'s return value on the normal path and stays
/// `false` (abrupt) when the writer panics.
struct ConnTeardown<'a> {
    shared: &'a NetShared,
    finished: &'a AtomicBool,
    graceful: bool,
}

impl Drop for ConnTeardown<'_> {
    fn drop(&mut self) {
        self.shared.counters.conn_closed(self.graceful);
        self.finished.store(true, Ordering::SeqCst);
    }
}

/// Writes replies in dispatch order, flushing when the queue goes idle —
/// the sequencing half of the connection. Returns whether the close was
/// graceful (every accepted request answered and flushed); the caller's
/// [`ConnTeardown`] guard does the accounting.
fn writer_loop<S: NetStream>(
    shared: &NetShared,
    stream: S,
    out_rx: Receiver<OutMsg>,
    state: &ConnState,
) -> bool {
    let mut w = io::BufWriter::with_capacity(64 * 1024, stream);
    let mut buf = Vec::with_capacity(4 * 1024);
    let mut broken = false;
    'outer: loop {
        let first = match out_rx.recv() {
            Ok(m) => m,
            Err(_) => break, // reader gone and every reply written
        };
        let mut next = Some(first);
        while let Some(msg) = next {
            let fatal = matches!(msg, OutMsg::Fatal { .. });
            if write_msg(shared, &mut w, &mut buf, msg).is_err() {
                broken = true;
                break 'outer;
            }
            if fatal {
                broken = true; // protocol violation: answered, now close
                break 'outer;
            }
            next = out_rx.try_recv().ok();
        }
        if w.flush().is_err() {
            broken = true;
            break;
        }
    }
    if broken {
        // Unblock the reader (it may be mid-read on a live peer) and
        // discard whatever replies were still queued.
        let _ = w.flush();
        if let Ok(stream) = w.into_inner() {
            let _ = stream.shut(Shutdown::Both);
        }
        while out_rx.recv().is_ok() {}
        false
    } else {
        let _ = w.flush();
        if let Ok(stream) = w.into_inner() {
            let _ = stream.shut(Shutdown::Both);
        }
        state.clean_eof.load(Ordering::SeqCst)
    }
}

/// Encodes and writes one queued message. For `Reply`, blocks until the
/// service resolves it — in-order delivery is the contract.
fn write_msg<W: Write>(
    shared: &NetShared,
    w: &mut W,
    buf: &mut Vec<u8>,
    msg: OutMsg,
) -> io::Result<()> {
    buf.clear();
    let n = match msg {
        OutMsg::Reply { seq, tenant, rx } => {
            let result = rx.recv().unwrap_or(Err(ServiceError::Unavailable));
            match result {
                Ok(reply) => {
                    write_frame(buf, seq, tenant, FrameKind::ReplyOk, &encode_reply(&reply))
                }
                Err(err) => write_frame(buf, seq, tenant, FrameKind::ReplyErr, &encode_error(&err)),
            }
        }
        OutMsg::Ready {
            seq,
            tenant,
            result,
        } => match *result {
            Ok(reply) => write_frame(buf, seq, tenant, FrameKind::ReplyOk, &encode_reply(&reply)),
            Err(err) => write_frame(buf, seq, tenant, FrameKind::ReplyErr, &encode_error(&err)),
        },
        OutMsg::Fatal { seq, tenant, msg } => {
            write_frame(buf, seq, tenant, FrameKind::ProtocolError, msg.as_bytes())
        }
    };
    w.write_all(buf)?;
    shared.counters.frame_out(n as u64);
    Ok(())
}

/// Handle onto a running listener; dropping it *without* calling
/// [`NetServerHandle::shutdown`] leaves the listener running for the
/// process lifetime (detached), mirroring `ServerHandle`'s contract.
pub struct NetServerHandle {
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
    counters: Arc<NetCounters>,
    local_addr: Option<SocketAddr>,
    #[cfg(unix)]
    uds_path: Option<std::path::PathBuf>,
}

impl NetServerHandle {
    /// The bound TCP address (`None` for Unix-socket listeners) — the
    /// thing to hand to [`crate::net::client::DmsTcpClient::connect`]
    /// after binding port 0.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Live view of this listener's wire counters (the same numbers
    /// `Request::Metrics` reports under `net`).
    pub fn counters(&self) -> &Arc<NetCounters> {
        &self.counters
    }

    /// Graceful drain: stop accepting, half-close every connection's read
    /// side, and join connection threads — every request already read off
    /// a socket is answered and flushed before this returns. The
    /// underlying deployment keeps running; shut it down separately via
    /// its own `ServerHandle` once its listeners are drained.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        let accept = match self.accept.take() {
            Some(a) => a,
            None => return,
        };
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        wake_listener(self);
        let _ = accept.join();
        let conns: Vec<Conn> = {
            let mut map = self.shared.conns.lock();
            map.drain().map(|(_, c)| c).collect()
        };
        for conn in &conns {
            (conn.drain)();
        }
        for conn in conns {
            let _ = conn.reader.join();
            let _ = conn.writer.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Unblocks the accept thread with a throwaway self-connection.
fn wake_listener(handle: &NetServerHandle) {
    if let Some(addr) = handle.local_addr {
        let _ = TcpStream::connect(addr);
        return;
    }
    #[cfg(unix)]
    if let Some(path) = &handle.uds_path {
        let _ = std::os::unix::net::UnixStream::connect(path);
    }
}
