//! Binary codecs for [`Request`], [`Reply`] and [`ServiceError`]
//! (DESIGN.md §13).
//!
//! Built on the bounds-checked little-endian primitives of
//! [`fairdms_datastore::wire`]: every decode of hostile bytes fails with a
//! [`WireError`] instead of panicking or allocating unbounded memory.
//! Variable-length fields carry a `u32` count whose implied byte size is
//! validated against the remaining input **before** any allocation, so a
//! forged count cannot force a multi-gigabyte `Vec`. Decoders also insist
//! the payload is fully consumed — trailing garbage is a protocol error,
//! not silently ignored slack.
//!
//! Layout conventions (all little-endian):
//!
//! * `usize` travels as `u64`;
//! * `bool` as one byte (0/1, anything else rejected);
//! * `String`/byte blobs as `u32` length + raw bytes (strings UTF-8
//!   checked);
//! * `Option<T>` as a one-byte flag + `T` when present;
//! * [`Tensor`] as `u8` ndim + ndim × `u32` dims + row-major `f32` data
//!   (bit patterns preserved exactly — encode∘decode is the identity even
//!   for NaN payloads);
//! * [`Document`] via [`RawCodec`] with a `u32` length prefix.

use crate::api::{RankedModels, Reply, Request, ServiceError};
use crate::metrics::{MetricsSnapshot, NetStats, OpSnapshot, BUCKETS, OPS};
use fairdms_core::embedding::EmbedTrainConfig;
use fairdms_core::fairds::PseudoLabelStats;
use fairdms_core::reuse::EmbedCacheStats;
use fairdms_core::workflow::UpdateReport;
use fairdms_datastore::wire::{OutOfBounds, Reader, WriteExt};
use fairdms_datastore::{Codec, CodecError, Document, RawCodec};
use fairdms_nn::trainer::{EpochStat, TrainReport};
use fairdms_tensor::Tensor;

/// Why a wire message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// An enum discriminant byte was not a known variant.
    BadTag {
        /// Which vocabulary the tag belongs to (`"request"`, `"reply"`…).
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A structurally valid message carried an impossible value (forged
    /// length, unknown op name, histogram width mismatch…).
    Invalid(String),
    /// The message decoded but left unread bytes behind.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::Invalid(msg) => write!(f, "invalid message: {msg}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<OutOfBounds> for WireError {
    fn from(_: OutOfBounds) -> Self {
        WireError::Truncated
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Invalid(format!("embedded document: {e:?}"))
    }
}

// ---------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------

fn put_usize(out: &mut Vec<u8>, v: usize) {
    out.put_u64(v as u64);
}

fn get_usize(r: &mut Reader<'_>) -> Result<usize, WireError> {
    usize::try_from(r.u64()?).map_err(|_| WireError::Invalid("usize overflow".into()))
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.put_u8(v as u8);
}

fn get_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(WireError::BadTag {
            what: "bool",
            tag: b,
        }),
    }
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    assert!(v.len() <= u32::MAX as usize, "blob over u32::MAX bytes");
    out.put_u32(v.len() as u32);
    out.extend_from_slice(v);
}

fn get_bytes(r: &mut Reader<'_>) -> Result<Vec<u8>, WireError> {
    let len = r.u32()? as usize;
    Ok(r.take(len)?.to_vec())
}

fn put_string(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    String::from_utf8(get_bytes(r)?).map_err(|_| WireError::BadUtf8)
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    assert!(v.len() <= u32::MAX as usize, "vector over u32::MAX entries");
    out.put_u32(v.len() as u32);
    for x in v {
        out.put_f64(*x);
    }
}

fn get_f64_vec(r: &mut Reader<'_>) -> Result<Vec<f64>, WireError> {
    let len = r.u32()? as usize;
    // Validate the implied byte size against the input before allocating:
    // a forged count must fail here, not in the allocator.
    let need = len.checked_mul(8).ok_or(WireError::Truncated)?;
    if need > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(r.f64()?);
    }
    Ok(v)
}

fn put_opt_usize(out: &mut Vec<u8>, v: Option<usize>) {
    match v {
        None => out.put_u8(0),
        Some(x) => {
            out.put_u8(1);
            put_usize(out, x);
        }
    }
}

fn get_opt_usize(r: &mut Reader<'_>) -> Result<Option<usize>, WireError> {
    Ok(if get_bool(r)? {
        Some(get_usize(r)?)
    } else {
        None
    })
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.put_u8(0),
        Some(x) => {
            out.put_u8(1);
            out.put_f64(x);
        }
    }
}

fn get_opt_f64(r: &mut Reader<'_>) -> Result<Option<f64>, WireError> {
    Ok(if get_bool(r)? { Some(r.f64()?) } else { None })
}

/// Most tensors on this wire are `[N, side²]` matrices; 8 dims is far
/// beyond anything the service constructs and bounds hostile inputs.
const MAX_TENSOR_NDIM: u8 = 8;

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    let shape = t.shape();
    assert!(
        shape.len() <= MAX_TENSOR_NDIM as usize,
        "tensor rank over wire limit"
    );
    out.put_u8(shape.len() as u8);
    for d in shape {
        assert!(*d <= u32::MAX as usize, "tensor dim over u32::MAX");
        out.put_u32(*d as u32);
    }
    for x in t.data() {
        out.put_f32(*x);
    }
}

fn get_tensor(r: &mut Reader<'_>) -> Result<Tensor, WireError> {
    let ndim = r.u8()?;
    if ndim > MAX_TENSOR_NDIM {
        return Err(WireError::Invalid(format!("tensor rank {ndim} over limit")));
    }
    let mut dims = Vec::with_capacity(ndim as usize);
    let mut numel = 1usize;
    for _ in 0..ndim {
        let d = r.u32()? as usize;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| WireError::Invalid("tensor element count overflow".into()))?;
        dims.push(d);
    }
    let need = numel.checked_mul(4).ok_or(WireError::Truncated)?;
    if need > r.remaining() {
        return Err(WireError::Truncated);
    }
    let raw = r.take(need).expect("size checked");
    let mut data = Vec::with_capacity(numel);
    for chunk in raw.chunks_exact(4) {
        data.push(f32::from_le_bytes(chunk.try_into().unwrap()));
    }
    Ok(Tensor::from_vec(data, &dims))
}

fn put_document(out: &mut Vec<u8>, doc: &Document) {
    put_bytes(out, &RawCodec.encode(doc));
}

fn get_document(r: &mut Reader<'_>) -> Result<Document, WireError> {
    let len = r.u32()? as usize;
    let bytes = r.take(len)?;
    Ok(RawCodec.decode(bytes)?)
}

fn put_documents(out: &mut Vec<u8>, docs: &[Document]) {
    assert!(docs.len() <= u32::MAX as usize, "too many documents");
    out.put_u32(docs.len() as u32);
    for d in docs {
        put_document(out, d);
    }
}

fn get_documents(r: &mut Reader<'_>) -> Result<Vec<Document>, WireError> {
    let len = r.u32()? as usize;
    // Each document costs ≥4 bytes of input (its own length prefix), so
    // the count is bounded by what's actually present.
    if len.checked_mul(4).ok_or(WireError::Truncated)? > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut docs = Vec::with_capacity(len);
    for _ in 0..len {
        docs.push(get_document(r)?);
    }
    Ok(docs)
}

fn put_embed_cfg(out: &mut Vec<u8>, cfg: &EmbedTrainConfig) {
    put_usize(out, cfg.epochs);
    put_usize(out, cfg.batch_size);
    out.put_f32(cfg.lr);
    out.put_f32(cfg.temperature);
    out.put_f32(cfg.tau);
    out.put_u64(cfg.seed);
}

fn get_embed_cfg(r: &mut Reader<'_>) -> Result<EmbedTrainConfig, WireError> {
    Ok(EmbedTrainConfig {
        epochs: get_usize(r)?,
        batch_size: get_usize(r)?,
        lr: r.f32()?,
        temperature: r.f32()?,
        tau: r.f32()?,
        seed: r.u64()?,
    })
}

fn put_label_stats(out: &mut Vec<u8>, s: &PseudoLabelStats) {
    put_usize(out, s.reused);
    put_usize(out, s.computed);
}

fn get_label_stats(r: &mut Reader<'_>) -> Result<PseudoLabelStats, WireError> {
    Ok(PseudoLabelStats {
        reused: get_usize(r)?,
        computed: get_usize(r)?,
    })
}

fn put_train_report(out: &mut Vec<u8>, rep: &TrainReport) {
    assert!(rep.curve.len() <= u32::MAX as usize, "curve over u32::MAX");
    out.put_u32(rep.curve.len() as u32);
    for s in &rep.curve {
        put_usize(out, s.epoch);
        out.put_f32(s.train_loss);
        out.put_f32(s.val_loss);
    }
    out.put_f64(rep.wall_secs);
    put_bool(out, rep.stopped_early);
    put_bool(out, rep.cancelled);
}

fn get_train_report(r: &mut Reader<'_>) -> Result<TrainReport, WireError> {
    let len = r.u32()? as usize;
    // 16 bytes per epoch stat on the wire.
    if len.checked_mul(16).ok_or(WireError::Truncated)? > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut curve = Vec::with_capacity(len);
    for _ in 0..len {
        curve.push(EpochStat {
            epoch: get_usize(r)?,
            train_loss: r.f32()?,
            val_loss: r.f32()?,
        });
    }
    Ok(TrainReport {
        curve,
        wall_secs: r.f64()?,
        stopped_early: get_bool(r)?,
        cancelled: get_bool(r)?,
    })
}

fn put_update_report(out: &mut Vec<u8>, rep: &UpdateReport) {
    out.put_f64(rep.label_secs);
    out.put_f64(rep.train_secs);
    put_label_stats(out, &rep.label_stats);
    put_opt_usize(out, rep.foundation);
    put_opt_f64(out, rep.divergence);
    put_usize(out, rep.epochs);
    put_train_report(out, &rep.train_report);
    put_usize(out, rep.registered_id);
}

fn get_update_report(r: &mut Reader<'_>) -> Result<UpdateReport, WireError> {
    Ok(UpdateReport {
        label_secs: r.f64()?,
        train_secs: r.f64()?,
        label_stats: get_label_stats(r)?,
        foundation: get_opt_usize(r)?,
        divergence: get_opt_f64(r)?,
        epochs: get_usize(r)?,
        train_report: get_train_report(r)?,
        registered_id: get_usize(r)?,
    })
}

fn put_ranked(out: &mut Vec<u8>, ranked: &RankedModels) {
    assert!(
        ranked.ranked.len() <= u32::MAX as usize,
        "ranking over u32::MAX"
    );
    out.put_u32(ranked.ranked.len() as u32);
    for (id, jsd) in &ranked.ranked {
        put_usize(out, *id);
        out.put_f64(*jsd);
    }
    put_bool(out, ranked.fine_tunable);
}

fn get_ranked(r: &mut Reader<'_>) -> Result<RankedModels, WireError> {
    let len = r.u32()? as usize;
    if len.checked_mul(16).ok_or(WireError::Truncated)? > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut ranked = Vec::with_capacity(len);
    for _ in 0..len {
        let id = get_usize(r)?;
        let jsd = r.f64()?;
        ranked.push((id, jsd));
    }
    Ok(RankedModels {
        ranked,
        fine_tunable: get_bool(r)?,
    })
}

fn put_op_snapshot(out: &mut Vec<u8>, s: &OpSnapshot) {
    out.put_u64(s.count);
    out.put_u64(s.errors);
    out.put_u64(s.total_ns);
    out.put_u64(s.min_ns);
    out.put_u64(s.max_ns);
    for b in &s.histogram {
        out.put_u64(*b);
    }
}

fn get_op_snapshot(r: &mut Reader<'_>) -> Result<OpSnapshot, WireError> {
    let count = r.u64()?;
    let errors = r.u64()?;
    let total_ns = r.u64()?;
    let min_ns = r.u64()?;
    let max_ns = r.u64()?;
    let mut histogram = [0u64; BUCKETS];
    for b in histogram.iter_mut() {
        *b = r.u64()?;
    }
    Ok(OpSnapshot {
        count,
        errors,
        total_ns,
        min_ns,
        max_ns,
        histogram,
    })
}

fn put_op_table(out: &mut Vec<u8>, table: &[(&'static str, OpSnapshot)]) {
    assert!(table.len() <= u32::MAX as usize, "op table over u32::MAX");
    out.put_u32(table.len() as u32);
    for (name, snap) in table {
        put_string(out, name);
        put_op_snapshot(out, snap);
    }
}

fn get_op_table(r: &mut Reader<'_>) -> Result<Vec<(&'static str, OpSnapshot)>, WireError> {
    let len = r.u32()? as usize;
    if len > OPS.len() {
        return Err(WireError::Invalid(format!(
            "op table claims {len} operations, registry has {}",
            OPS.len()
        )));
    }
    let mut table = Vec::with_capacity(len);
    for _ in 0..len {
        let name = get_string(r)?;
        // Map back onto the registry's static names so the decoded
        // snapshot is indistinguishable from a local one.
        let static_name = OPS
            .iter()
            .copied()
            .find(|n| *n == name)
            .ok_or_else(|| WireError::Invalid(format!("unknown op name {name:?}")))?;
        table.push((static_name, get_op_snapshot(r)?));
    }
    Ok(table)
}

fn put_metrics(out: &mut Vec<u8>, m: &MetricsSnapshot) {
    // Histogram width goes first so a peer built against a different
    // BUCKETS fails loudly instead of misparsing every histogram.
    out.put_u32(BUCKETS as u32);
    put_op_table(out, &m.ops);
    put_op_table(out, &m.queue);
    out.put_u64(m.system_retrains);
    out.put_u64(m.retrain_docs_copied);
    out.put_u64(m.retrain_docs_delta_embedded);
    out.put_u64(m.training_jobs_started);
    out.put_u64(m.training_jobs_completed);
    out.put_u64(m.training_jobs_superseded);
    out.put_u64(m.training_jobs_queued);
    out.put_u64(m.backpressure_waits);
    out.put_u64(m.rejected);
    out.put_u64(m.embed_cache.hits);
    out.put_u64(m.embed_cache.misses);
    out.put_u64(m.embed_cache.evictions);
    out.put_u64(m.embed_cache.stale_generation);
    out.put_u64(m.read_index_probes);
    out.put_u64(m.read_index_balls_pruned);
    out.put_u64(m.read_index_candidates_scanned);
    out.put_u64(m.net.connections_opened);
    out.put_u64(m.net.connections_active);
    out.put_u64(m.net.connections_busy_rejected);
    out.put_u64(m.net.frames_in);
    out.put_u64(m.net.frames_out);
    out.put_u64(m.net.bytes_in);
    out.put_u64(m.net.bytes_out);
    out.put_u64(m.net.decode_errors);
    out.put_u64(m.net.drains_graceful);
    out.put_u64(m.net.drains_abrupt);
}

fn get_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let buckets = r.u32()? as usize;
    if buckets != BUCKETS {
        return Err(WireError::Invalid(format!(
            "histogram width {buckets} != {BUCKETS}"
        )));
    }
    Ok(MetricsSnapshot {
        ops: get_op_table(r)?,
        queue: get_op_table(r)?,
        system_retrains: r.u64()?,
        retrain_docs_copied: r.u64()?,
        retrain_docs_delta_embedded: r.u64()?,
        training_jobs_started: r.u64()?,
        training_jobs_completed: r.u64()?,
        training_jobs_superseded: r.u64()?,
        training_jobs_queued: r.u64()?,
        backpressure_waits: r.u64()?,
        rejected: r.u64()?,
        embed_cache: EmbedCacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
            evictions: r.u64()?,
            stale_generation: r.u64()?,
        },
        read_index_probes: r.u64()?,
        read_index_balls_pruned: r.u64()?,
        read_index_candidates_scanned: r.u64()?,
        net: NetStats {
            connections_opened: r.u64()?,
            connections_active: r.u64()?,
            connections_busy_rejected: r.u64()?,
            frames_in: r.u64()?,
            frames_out: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
            decode_errors: r.u64()?,
            drains_graceful: r.u64()?,
            drains_abrupt: r.u64()?,
        },
    })
}

// ---------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------

const REQ_TRAIN_SYSTEM: u8 = 0;
const REQ_INGEST: u8 = 1;
const REQ_PDF: u8 = 2;
const REQ_PSEUDO_LABEL: u8 = 3;
const REQ_LOOKUP: u8 = 4;
const REQ_RECOMMEND: u8 = 5;
const REQ_UPDATE: u8 = 6;
const REQ_PUBLISH: u8 = 7;
const REQ_FETCH: u8 = 8;
const REQ_CERTAINTY: u8 = 9;
const REQ_METRICS: u8 = 10;

/// Encodes a request into its wire payload (the frame layer adds the
/// seq/kind envelope).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::TrainSystem { images, embed_cfg } => {
            out.put_u8(REQ_TRAIN_SYSTEM);
            put_embed_cfg(&mut out, embed_cfg);
            put_tensor(&mut out, images);
        }
        Request::IngestLabeled {
            images,
            labels,
            scan,
        } => {
            out.put_u8(REQ_INGEST);
            put_usize(&mut out, *scan);
            put_tensor(&mut out, images);
            put_tensor(&mut out, labels);
        }
        Request::DatasetPdf { images } => {
            out.put_u8(REQ_PDF);
            put_tensor(&mut out, images);
        }
        Request::PseudoLabel { images, threshold } => {
            out.put_u8(REQ_PSEUDO_LABEL);
            out.put_f32(*threshold);
            put_tensor(&mut out, images);
        }
        Request::LookupMatching { pdf, count } => {
            out.put_u8(REQ_LOOKUP);
            put_usize(&mut out, *count);
            put_f64_vec(&mut out, pdf);
        }
        Request::Recommend { pdf, top_k } => {
            out.put_u8(REQ_RECOMMEND);
            put_opt_usize(&mut out, *top_k);
            put_f64_vec(&mut out, pdf);
        }
        Request::UpdateModel { images, scan } => {
            out.put_u8(REQ_UPDATE);
            put_usize(&mut out, *scan);
            put_tensor(&mut out, images);
        }
        Request::PublishModel {
            name,
            checkpoint,
            pdf,
            scan,
        } => {
            out.put_u8(REQ_PUBLISH);
            put_string(&mut out, name);
            put_usize(&mut out, *scan);
            put_f64_vec(&mut out, pdf);
            put_bytes(&mut out, checkpoint);
        }
        Request::FetchModel { zoo_id } => {
            out.put_u8(REQ_FETCH);
            put_usize(&mut out, *zoo_id);
        }
        Request::Certainty { images } => {
            out.put_u8(REQ_CERTAINTY);
            put_tensor(&mut out, images);
        }
        Request::Metrics => {
            out.put_u8(REQ_METRICS);
        }
    }
    out
}

/// Decodes a request payload; every byte must be consumed.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(bytes);
    let tag = r.u8()?;
    let req = match tag {
        REQ_TRAIN_SYSTEM => {
            let embed_cfg = get_embed_cfg(&mut r)?;
            let images = get_tensor(&mut r)?;
            Request::TrainSystem { images, embed_cfg }
        }
        REQ_INGEST => {
            let scan = get_usize(&mut r)?;
            let images = get_tensor(&mut r)?;
            let labels = get_tensor(&mut r)?;
            Request::IngestLabeled {
                images,
                labels,
                scan,
            }
        }
        REQ_PDF => Request::DatasetPdf {
            images: get_tensor(&mut r)?,
        },
        REQ_PSEUDO_LABEL => {
            let threshold = r.f32()?;
            let images = get_tensor(&mut r)?;
            Request::PseudoLabel { images, threshold }
        }
        REQ_LOOKUP => {
            let count = get_usize(&mut r)?;
            let pdf = get_f64_vec(&mut r)?;
            Request::LookupMatching { pdf, count }
        }
        REQ_RECOMMEND => {
            let top_k = get_opt_usize(&mut r)?;
            let pdf = get_f64_vec(&mut r)?;
            Request::Recommend { pdf, top_k }
        }
        REQ_UPDATE => {
            let scan = get_usize(&mut r)?;
            let images = get_tensor(&mut r)?;
            Request::UpdateModel { images, scan }
        }
        REQ_PUBLISH => {
            let name = get_string(&mut r)?;
            let scan = get_usize(&mut r)?;
            let pdf = get_f64_vec(&mut r)?;
            let checkpoint = get_bytes(&mut r)?;
            Request::PublishModel {
                name,
                checkpoint,
                pdf,
                scan,
            }
        }
        REQ_FETCH => Request::FetchModel {
            zoo_id: get_usize(&mut r)?,
        },
        REQ_CERTAINTY => Request::Certainty {
            images: get_tensor(&mut r)?,
        },
        REQ_METRICS => Request::Metrics,
        t => {
            return Err(WireError::BadTag {
                what: "request",
                tag: t,
            })
        }
    };
    finish(r)?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Reply
// ---------------------------------------------------------------------

const REP_SYSTEM_TRAINED: u8 = 0;
const REP_INGESTED: u8 = 1;
const REP_PDF: u8 = 2;
const REP_LABELED: u8 = 3;
const REP_DOCUMENTS: u8 = 4;
const REP_RANKED: u8 = 5;
const REP_UPDATED: u8 = 6;
const REP_PUBLISHED: u8 = 7;
const REP_MODEL: u8 = 8;
const REP_CERTAINTY: u8 = 9;
const REP_METRICS: u8 = 10;

/// Encodes a successful reply into its wire payload.
pub fn encode_reply(rep: &Reply) -> Vec<u8> {
    let mut out = Vec::new();
    match rep {
        Reply::SystemTrained { k } => {
            out.put_u8(REP_SYSTEM_TRAINED);
            put_usize(&mut out, *k);
        }
        Reply::Ingested { count, retrained } => {
            out.put_u8(REP_INGESTED);
            put_usize(&mut out, *count);
            put_bool(&mut out, *retrained);
        }
        Reply::Pdf(pdf) => {
            out.put_u8(REP_PDF);
            put_f64_vec(&mut out, pdf);
        }
        Reply::Labeled { labels, stats } => {
            out.put_u8(REP_LABELED);
            put_label_stats(&mut out, stats);
            put_tensor(&mut out, labels);
        }
        Reply::Documents(docs) => {
            out.put_u8(REP_DOCUMENTS);
            put_documents(&mut out, docs);
        }
        Reply::Ranked(ranked) => {
            out.put_u8(REP_RANKED);
            put_ranked(&mut out, ranked);
        }
        Reply::Updated { checkpoint, report } => {
            out.put_u8(REP_UPDATED);
            put_update_report(&mut out, report);
            put_bytes(&mut out, checkpoint);
        }
        Reply::Published { zoo_id } => {
            out.put_u8(REP_PUBLISHED);
            put_usize(&mut out, *zoo_id);
        }
        Reply::Model { checkpoint, pdf } => {
            out.put_u8(REP_MODEL);
            put_f64_vec(&mut out, pdf);
            put_bytes(&mut out, checkpoint);
        }
        Reply::Certainty(c) => {
            out.put_u8(REP_CERTAINTY);
            out.put_f64(*c);
        }
        Reply::Metrics(m) => {
            out.put_u8(REP_METRICS);
            put_metrics(&mut out, m);
        }
    }
    out
}

/// Decodes a reply payload; every byte must be consumed.
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, WireError> {
    let mut r = Reader::new(bytes);
    let tag = r.u8()?;
    let rep = match tag {
        REP_SYSTEM_TRAINED => Reply::SystemTrained {
            k: get_usize(&mut r)?,
        },
        REP_INGESTED => Reply::Ingested {
            count: get_usize(&mut r)?,
            retrained: get_bool(&mut r)?,
        },
        REP_PDF => Reply::Pdf(get_f64_vec(&mut r)?),
        REP_LABELED => {
            let stats = get_label_stats(&mut r)?;
            let labels = get_tensor(&mut r)?;
            Reply::Labeled { labels, stats }
        }
        REP_DOCUMENTS => Reply::Documents(get_documents(&mut r)?),
        REP_RANKED => Reply::Ranked(get_ranked(&mut r)?),
        REP_UPDATED => {
            let report = get_update_report(&mut r)?;
            let checkpoint = get_bytes(&mut r)?;
            Reply::Updated { checkpoint, report }
        }
        REP_PUBLISHED => Reply::Published {
            zoo_id: get_usize(&mut r)?,
        },
        REP_MODEL => {
            let pdf = get_f64_vec(&mut r)?;
            let checkpoint = get_bytes(&mut r)?;
            Reply::Model { checkpoint, pdf }
        }
        REP_CERTAINTY => Reply::Certainty(r.f64()?),
        REP_METRICS => Reply::Metrics(get_metrics(&mut r)?),
        t => {
            return Err(WireError::BadTag {
                what: "reply",
                tag: t,
            })
        }
    };
    finish(r)?;
    Ok(rep)
}

// ---------------------------------------------------------------------
// ServiceError
// ---------------------------------------------------------------------

const ERR_NOT_READY: u8 = 0;
const ERR_UNKNOWN_MODEL: u8 = 1;
const ERR_INVALID: u8 = 2;
const ERR_UNAVAILABLE: u8 = 3;
const ERR_SUPERSEDED: u8 = 4;
const ERR_BUSY: u8 = 5;
const ERR_PROTOCOL: u8 = 6;

/// Encodes a service error into its wire payload.
pub fn encode_error(err: &ServiceError) -> Vec<u8> {
    let mut out = Vec::new();
    match err {
        ServiceError::NotReady => out.put_u8(ERR_NOT_READY),
        ServiceError::UnknownModel(id) => {
            out.put_u8(ERR_UNKNOWN_MODEL);
            put_usize(&mut out, *id);
        }
        ServiceError::Invalid(msg) => {
            out.put_u8(ERR_INVALID);
            put_string(&mut out, msg);
        }
        ServiceError::Unavailable => out.put_u8(ERR_UNAVAILABLE),
        ServiceError::Superseded => out.put_u8(ERR_SUPERSEDED),
        ServiceError::Busy => out.put_u8(ERR_BUSY),
        ServiceError::Protocol(msg) => {
            out.put_u8(ERR_PROTOCOL);
            put_string(&mut out, msg);
        }
    }
    out
}

/// Decodes a service error payload; every byte must be consumed.
pub fn decode_error(bytes: &[u8]) -> Result<ServiceError, WireError> {
    let mut r = Reader::new(bytes);
    let err = match r.u8()? {
        ERR_NOT_READY => ServiceError::NotReady,
        ERR_UNKNOWN_MODEL => ServiceError::UnknownModel(get_usize(&mut r)?),
        ERR_INVALID => ServiceError::Invalid(get_string(&mut r)?),
        ERR_UNAVAILABLE => ServiceError::Unavailable,
        ERR_SUPERSEDED => ServiceError::Superseded,
        ERR_BUSY => ServiceError::Busy,
        ERR_PROTOCOL => ServiceError::Protocol(get_string(&mut r)?),
        t => {
            return Err(WireError::BadTag {
                what: "service error",
                tag: t,
            })
        }
    };
    finish(r)?;
    Ok(err)
}

fn finish(r: Reader<'_>) -> Result<(), WireError> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(WireError::TrailingBytes(r.remaining()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn request_roundtrip_all_variants() {
        let reqs = vec![
            Request::TrainSystem {
                images: t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]),
                embed_cfg: EmbedTrainConfig::default(),
            },
            Request::IngestLabeled {
                images: t(&[0.5; 6], &[2, 3]),
                labels: t(&[1.0, 0.0], &[2, 1]),
                scan: 7,
            },
            Request::DatasetPdf {
                images: t(&[f32::NAN], &[1, 1]),
            },
            Request::PseudoLabel {
                images: t(&[0.25; 4], &[4, 1]),
                threshold: 0.125,
            },
            Request::LookupMatching {
                pdf: vec![0.5, 0.5],
                count: 3,
            },
            Request::Recommend {
                pdf: vec![1.0],
                top_k: Some(2),
            },
            Request::UpdateModel {
                images: t(&[0.0; 2], &[1, 2]),
                scan: 0,
            },
            Request::PublishModel {
                name: "résumé-model".into(),
                checkpoint: vec![0, 1, 2, 255],
                pdf: vec![0.25, 0.75],
                scan: 9,
            },
            Request::FetchModel { zoo_id: 42 },
            Request::Certainty {
                images: t(&[1.0; 3], &[3, 1]),
            },
            Request::Metrics,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).unwrap();
            // Request has no PartialEq; re-encoding must be the identity.
            assert_eq!(
                encode_request(&back),
                bytes,
                "roundtrip changed {:?}",
                req.op_name()
            );
        }
    }

    #[test]
    fn error_roundtrip_all_variants() {
        let errs = [
            ServiceError::NotReady,
            ServiceError::UnknownModel(3),
            ServiceError::Invalid("bad shape".into()),
            ServiceError::Unavailable,
            ServiceError::Superseded,
            ServiceError::Busy,
            ServiceError::Protocol("torn frame".into()),
        ];
        for err in errs {
            let bytes = encode_error(&err);
            assert_eq!(decode_error(&bytes).unwrap(), err);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&Request::Metrics);
        bytes.push(0);
        assert_eq!(
            decode_request(&bytes).unwrap_err(),
            WireError::TrailingBytes(1),
            "trailing garbage must not be ignored"
        );
    }

    #[test]
    fn forged_vector_count_fails_before_allocating() {
        // LookupMatching with a pdf count of u32::MAX but no data.
        let mut bytes = Vec::new();
        bytes.put_u8(REQ_LOOKUP);
        bytes.put_u64(1); // count
        bytes.put_u32(u32::MAX); // forged pdf length
        assert_eq!(decode_request(&bytes).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn forged_tensor_dims_fail_cleanly() {
        // 2×u32::MAX claimed elements — the checked_mul path.
        let mut bytes = Vec::new();
        bytes.put_u8(REQ_CERTAINTY);
        bytes.put_u8(4); // ndim
        for _ in 0..4 {
            bytes.put_u32(u32::MAX);
        }
        let err = decode_request(&bytes).unwrap_err();
        assert!(
            matches!(err, WireError::Invalid(_) | WireError::Truncated),
            "got {err:?}"
        );
    }

    #[test]
    fn nan_tensor_bits_survive_roundtrip() {
        let quiet = f32::from_bits(0x7fc0_0001);
        let req = Request::DatasetPdf {
            images: t(&[quiet, -0.0], &[1, 2]),
        };
        let bytes = encode_request(&req);
        match decode_request(&bytes).unwrap() {
            Request::DatasetPdf { images } => {
                assert_eq!(images.data()[0].to_bits(), 0x7fc0_0001);
                assert_eq!(images.data()[1].to_bits(), (-0.0f32).to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}
