//! The wire plane: fairDMS over real sockets (DESIGN.md §13).
//!
//! Everything below the in-process [`crate::server::DmsClient`] already
//! models the paper's concurrent service (admission queues, read pool,
//! mutation actor). This module puts an actual network boundary in front
//! of it:
//!
//! * [`frame`] — length-prefixed framing with a hard `max_frame_len`
//!   guard, safe against hostile length prefixes;
//! * [`codec`] — bounds-checked binary codecs for `Request` / `Reply` /
//!   `ServiceError`, built on [`fairdms_datastore::wire`];
//! * [`server`] — [`server::NetServer`]: threaded TCP/UDS listener with a
//!   bounded connection limit (over-limit sockets are *answered* `Busy`),
//!   per-connection pipelining into the deployment's existing queues, an
//!   in-order reply sequencer, and graceful drain;
//! * [`client`] — [`client::PipelinedClient`] (multi-handle, pipelined)
//!   and [`client::DmsTcpClient`] (blocking mirror of `DmsClient`).
//!
//! The perf story is **pipelining plus the inline-read fast path**: a
//! connection's reader dispatches every decoded request immediately, so
//! the server overlaps requests from one socket exactly as it overlaps
//! requests from many in-process threads, and the reply sequencer
//! batches responses into single writes. Read-only requests short-cut
//! further — the reader thread executes them inline against the
//! immutable service snapshot (`DmsClient::serve_read_inline`) and hands
//! the sequencer a pre-resolved reply, skipping the read-pool round trip
//! and its two thread parks entirely (`NetServerConfig::inline_reads`,
//! on by default). `benches/net_plane.rs` measures the resulting
//! throughput multiple over strict request-response usage of the same
//! stack: 18.5× at 256 connections on the CI runner, gated at ≥3×.

pub mod client;
pub mod codec;
pub mod frame;
pub mod server;

pub use client::{DmsTcpClient, Pending, PipelinedClient};
pub use codec::WireError;
pub use frame::{Frame, FrameError, FrameKind};
pub use server::{NetServer, NetServerConfig, NetServerHandle, TenantRouter};
