//! The data-movement service: a Globus transfer stand-in.
//!
//! Transfers between named endpoints are accounted in *virtual* seconds
//! from a per-endpoint-pair latency/bandwidth model (the repo cannot move
//! bytes over a real WAN; see DESIGN.md). The service keeps a transfer log
//! so workflows can attribute end-to-end time to data movement — the role
//! Globus transfer plays in the paper's Fig 15 accounting.

use parking_lot::RwLock;
use std::collections::HashMap;

/// A named data endpoint (beamline storage, compute cluster, model zoo…).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Endpoint(pub String);

impl Endpoint {
    /// Creates an endpoint from a name.
    pub fn new(name: &str) -> Self {
        Endpoint(name.to_string())
    }
}

/// Link parameters for an endpoint pair.
#[derive(Clone, Copy, Debug)]
struct Route {
    latency_s: f64,
    gbps: f64,
}

/// A completed transfer.
#[derive(Clone, Debug)]
pub struct TransferRecord {
    /// Source endpoint name.
    pub src: String,
    /// Destination endpoint name.
    pub dst: String,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Modeled duration in seconds.
    pub virtual_secs: f64,
}

/// The transfer service: routes + a log.
pub struct TransferService {
    routes: RwLock<HashMap<(Endpoint, Endpoint), Route>>,
    default_route: Route,
    log: RwLock<Vec<TransferRecord>>,
}

impl Default for TransferService {
    fn default() -> Self {
        Self::new()
    }
}

impl TransferService {
    /// A service whose default route models a well-provisioned WAN link
    /// (50 ms setup, 10 Gb/s sustained — typical inter-facility Globus
    /// performance).
    pub fn new() -> Self {
        TransferService {
            routes: RwLock::new(HashMap::new()),
            default_route: Route {
                latency_s: 0.05,
                gbps: 10.0,
            },
            log: RwLock::new(Vec::new()),
        }
    }

    /// Configures the link between two endpoints (both directions).
    pub fn set_route(&self, a: &Endpoint, b: &Endpoint, latency_s: f64, gbps: f64) {
        assert!(gbps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        let route = Route { latency_s, gbps };
        let mut routes = self.routes.write();
        routes.insert((a.clone(), b.clone()), route);
        routes.insert((b.clone(), a.clone()), route);
    }

    /// Executes a transfer, returning its record (also appended to the log).
    pub fn transfer(&self, src: &Endpoint, dst: &Endpoint, bytes: usize) -> TransferRecord {
        let route = self
            .routes
            .read()
            .get(&(src.clone(), dst.clone()))
            .copied()
            .unwrap_or(self.default_route);
        let virtual_secs = if src == dst {
            0.0 // local: no movement
        } else {
            route.latency_s + bytes as f64 * 8.0 / (route.gbps * 1e9)
        };
        let record = TransferRecord {
            src: src.0.clone(),
            dst: dst.0.clone(),
            bytes,
            virtual_secs,
        };
        self.log.write().push(record.clone());
        record
    }

    /// Snapshot of the transfer log.
    pub fn log(&self) -> Vec<TransferRecord> {
        self.log.read().clone()
    }

    /// Total modeled seconds across all logged transfers.
    pub fn total_virtual_secs(&self) -> f64 {
        self.log.read().iter().map(|r| r.virtual_secs).sum()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> usize {
        self.log.read().iter().map(|r| r.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_follows_route_model() {
        let svc = TransferService::new();
        let a = Endpoint::new("aps");
        let b = Endpoint::new("alcf");
        svc.set_route(&a, &b, 0.1, 1.0); // 1 Gb/s
        let rec = svc.transfer(&a, &b, 125_000_000); // 1 Gb payload
        assert!(
            (rec.virtual_secs - 1.1).abs() < 1e-9,
            "{}",
            rec.virtual_secs
        );
        // Symmetric route.
        let back = svc.transfer(&b, &a, 125_000_000);
        assert!((back.virtual_secs - 1.1).abs() < 1e-9);
    }

    #[test]
    fn local_transfers_are_free() {
        let svc = TransferService::new();
        let a = Endpoint::new("local");
        assert_eq!(svc.transfer(&a, &a, 1 << 30).virtual_secs, 0.0);
    }

    #[test]
    fn unknown_routes_use_the_default() {
        let svc = TransferService::new();
        let rec = svc.transfer(&Endpoint::new("x"), &Endpoint::new("y"), 0);
        assert!((rec.virtual_secs - 0.05).abs() < 1e-12);
    }

    #[test]
    fn log_accumulates_totals() {
        let svc = TransferService::new();
        let a = Endpoint::new("a");
        let b = Endpoint::new("b");
        svc.transfer(&a, &b, 100);
        svc.transfer(&a, &b, 200);
        assert_eq!(svc.log().len(), 2);
        assert_eq!(svc.total_bytes(), 300);
        assert!(svc.total_virtual_secs() > 0.0);
    }
}
