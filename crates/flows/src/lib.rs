//! # fairdms-flows
//!
//! The orchestration substrate. The paper's end-to-end workflow (§III-C)
//! "uses the Globus Flows service to orchestrate funcX and Globus transfer
//! tasks": Flows sequences the steps, funcX executes user/system-plane
//! functions serverlessly, and Globus transfer moves data and models
//! between facility and compute cluster. Those are hosted services; this
//! crate provides local equivalents with the same roles:
//!
//! * [`executor::FuncExecutor`] — a registry + thread pool executing named
//!   functions asynchronously with futures (funcX stand-in);
//! * [`transfer::TransferService`] — endpoint-to-endpoint transfers with
//!   modeled latency/bandwidth and per-transfer records (Globus transfer
//!   stand-in; wire time is virtual, consistent with DESIGN.md);
//! * [`flow::Flow`] — DAG flow definitions executed wave-parallel with
//!   retries and per-step timing attribution (Globus Flows stand-in).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod flow;
pub mod jobs;
pub mod transfer;

pub use executor::{FuncExecutor, TaskHandle};
pub use flow::{Flow, FlowError, FlowReport, StepOutcome, StepReport};
pub use jobs::{CancelToken, JobPool};
pub use transfer::{Endpoint, TransferRecord, TransferService};
