//! A serverless-style function executor: the funcX stand-in.
//!
//! Functions are registered under string names (funcX registers function
//! ids) and submitted with an `f64` argument vector; submission returns a
//! [`TaskHandle`] future. The worker threads are a [`JobPool`] — the same
//! generic pool the fairDMS training executor runs on — so concurrent
//! submissions execute in parallel up to the pool width, the property the
//! paper relies on for "optimal resource allocation" of user/system plane
//! functions.

use crate::jobs::JobPool;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// A function runnable by the executor.
pub type Func = Arc<dyn Fn(&[f64]) -> Result<Vec<f64>, String> + Send + Sync>;

struct TaskSlot {
    result: Mutex<Option<Result<Vec<f64>, String>>>,
    ready: Condvar,
}

/// A future for a submitted task.
pub struct TaskHandle {
    slot: Arc<TaskSlot>,
}

impl TaskHandle {
    /// Blocks until the task completes and returns its result.
    pub fn wait(self) -> Result<Vec<f64>, String> {
        let mut guard = self.slot.result.lock();
        while guard.is_none() {
            self.slot.ready.wait(&mut guard);
        }
        guard.take().unwrap()
    }

    /// Non-blocking poll; `None` while the task is still running.
    pub fn try_take(&self) -> Option<Result<Vec<f64>, String>> {
        self.slot.result.lock().take()
    }
}

/// The executor: a function registry plus a [`JobPool`].
pub struct FuncExecutor {
    registry: RwLock<HashMap<String, Func>>,
    pool: JobPool,
}

impl FuncExecutor {
    /// Creates an executor with `workers` threads.
    pub fn new(workers: usize) -> Self {
        FuncExecutor {
            registry: RwLock::new(HashMap::new()),
            pool: JobPool::new(workers, "funcx-exec"),
        }
    }

    /// Registers a function under a name, replacing any previous one.
    pub fn register(
        &self,
        name: &str,
        func: impl Fn(&[f64]) -> Result<Vec<f64>, String> + Send + Sync + 'static,
    ) {
        self.registry
            .write()
            .insert(name.to_string(), Arc::new(func));
    }

    /// Whether a function name is registered.
    pub fn has(&self, name: &str) -> bool {
        self.registry.read().contains_key(name)
    }

    /// Submits a named function for asynchronous execution.
    ///
    /// Returns an error immediately when the name is unknown.
    pub fn submit(&self, name: &str, args: &[f64]) -> Result<TaskHandle, String> {
        let func = self
            .registry
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown function '{name}'"))?;
        let slot = Arc::new(TaskSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let job_slot = Arc::clone(&slot);
        let args = args.to_vec();
        self.pool.spawn(move |_| {
            // Completion drop-guard, armed *before* the function runs: a
            // panicking function unwinds into the pool's `catch_unwind`,
            // and without this the slot would never fill — `wait()` on the
            // Condvar would block forever and `try_take()` would poll
            // forever. The guard writes an `Err` into the slot and
            // notifies during the unwind; the success path disarms it and
            // delivers the real result.
            struct Complete {
                slot: Arc<TaskSlot>,
                armed: bool,
            }
            impl Drop for Complete {
                fn drop(&mut self) {
                    if self.armed {
                        *self.slot.result.lock() =
                            Some(Err("task panicked inside the executor".to_string()));
                        self.slot.ready.notify_all();
                    }
                }
            }
            let mut guard = Complete {
                slot: job_slot,
                armed: true,
            };
            let result = func(&args);
            guard.armed = false;
            *guard.slot.result.lock() = Some(result);
            guard.slot.ready.notify_all();
        });
        Ok(TaskHandle { slot })
    }

    /// Convenience: submit and wait.
    pub fn call(&self, name: &str, args: &[f64]) -> Result<Vec<f64>, String> {
        self.submit(name, args)?.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn registered_function_executes() {
        let ex = FuncExecutor::new(2);
        ex.register("sum", |args| Ok(vec![args.iter().sum()]));
        assert!(ex.has("sum"));
        assert_eq!(ex.call("sum", &[1.0, 2.0, 3.0]).unwrap(), vec![6.0]);
    }

    #[test]
    fn unknown_function_is_an_immediate_error() {
        let ex = FuncExecutor::new(1);
        assert!(ex.submit("nope", &[]).is_err());
    }

    #[test]
    fn function_errors_propagate() {
        let ex = FuncExecutor::new(1);
        ex.register("fail", |_| Err("boom".to_string()));
        assert_eq!(ex.call("fail", &[]).unwrap_err(), "boom");
    }

    #[test]
    fn tasks_run_concurrently_across_workers() {
        let ex = FuncExecutor::new(4);
        ex.register("sleepy", |_| {
            std::thread::sleep(Duration::from_millis(30));
            Ok(vec![1.0])
        });
        let t0 = Instant::now();
        let handles: Vec<TaskHandle> = (0..4).map(|_| ex.submit("sleepy", &[]).unwrap()).collect();
        for h in handles {
            h.wait().unwrap();
        }
        // 4 × 30 ms serial; parallel should land well under 2×.
        assert!(
            t0.elapsed() < Duration::from_millis(70),
            "took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let ex = FuncExecutor::new(1);
        ex.register("slow", |_| {
            std::thread::sleep(Duration::from_millis(40));
            Ok(vec![])
        });
        let h = ex.submit("slow", &[]).unwrap();
        // Either still running (None) or already done; never a hang.
        let _ = h.try_take();
        // Eventually completes.
        let t0 = Instant::now();
        loop {
            if let Some(r) = h.try_take() {
                r.unwrap();
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(2), "task never finished");
            std::thread::yield_now();
        }
    }

    #[test]
    fn panicked_function_resolves_wait_with_err_promptly() {
        let ex = FuncExecutor::new(1);
        ex.register("boom", |_| -> Result<Vec<f64>, String> {
            panic!("deliberate test panic");
        });
        let h = ex.submit("boom", &[]).unwrap();
        // wait() must return (an Err), not block forever on the Condvar.
        let (tx, rx) = crossbeam_channel::bounded(1);
        std::thread::spawn(move || {
            let _ = tx.send(h.wait());
        });
        let result = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("wait() hung on a panicked function");
        let err = result.expect_err("a panicked function must surface as Err");
        assert!(err.contains("panicked"), "unhelpful error: {err}");
        // The worker survived the panic and keeps serving.
        ex.register("ok", |_| Ok(vec![1.0]));
        assert_eq!(ex.call("ok", &[]).unwrap(), vec![1.0]);
    }

    #[test]
    fn panicked_function_terminates_try_take_polling() {
        let ex = FuncExecutor::new(1);
        ex.register("boom", |_| -> Result<Vec<f64>, String> {
            panic!("deliberate test panic");
        });
        let h = ex.submit("boom", &[]).unwrap();
        let t0 = Instant::now();
        loop {
            if let Some(r) = h.try_take() {
                assert!(r.is_err());
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "try_take polled forever on a panicked function"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn reregistration_replaces_function() {
        let ex = FuncExecutor::new(1);
        ex.register("f", |_| Ok(vec![1.0]));
        ex.register("f", |_| Ok(vec![2.0]));
        assert_eq!(ex.call("f", &[]).unwrap(), vec![2.0]);
    }
}
