//! DAG flow definitions and the wave-parallel runner: the Globus Flows
//! stand-in.
//!
//! A [`Flow`] is a set of named steps with dependencies. The runner
//! topologically sorts the DAG into *waves* of mutually independent steps,
//! executes each wave in parallel (scoped threads), retries failed steps up
//! to a per-flow budget, and reports per-step wall time plus any virtual
//! seconds the step attributes to modeled resources (transfers, remote
//! compute). The fairDMS case study (Fig 15) uses these reports for its
//! end-to-end time accounting.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// What a step reports back on success.
#[derive(Clone, Debug, Default)]
pub struct StepOutcome {
    /// Modeled (virtual) seconds consumed — e.g. transfer time.
    pub virtual_secs: f64,
    /// Free-form scalar outputs, merged into the flow context.
    pub outputs: HashMap<String, f64>,
}

impl StepOutcome {
    /// An empty outcome.
    pub fn none() -> Self {
        StepOutcome::default()
    }

    /// An outcome carrying only virtual time.
    pub fn virtual_time(secs: f64) -> Self {
        StepOutcome {
            virtual_secs: secs,
            outputs: HashMap::new(),
        }
    }

    /// Builder-style scalar output.
    pub fn with_output(mut self, key: &str, value: f64) -> Self {
        self.outputs.insert(key.to_string(), value);
        self
    }
}

type StepFn = Box<dyn Fn(&HashMap<String, f64>) -> Result<StepOutcome, String> + Send + Sync>;

struct Step {
    name: String,
    deps: Vec<String>,
    run: StepFn,
}

/// Errors raised when building or running a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A step names a dependency that does not exist.
    UnknownDependency {
        /// The step declaring the dependency.
        step: String,
        /// The missing dependency name.
        dependency: String,
    },
    /// The dependency graph has a cycle (no runnable order exists).
    Cycle,
    /// A step failed after exhausting its retry budget.
    StepFailed {
        /// The failing step.
        step: String,
        /// Its final error message.
        error: String,
        /// Number of attempts made.
        attempts: usize,
    },
    /// Two steps share a name.
    DuplicateStep(String),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::UnknownDependency { step, dependency } => {
                write!(f, "step '{step}' depends on unknown step '{dependency}'")
            }
            FlowError::Cycle => write!(f, "flow dependency graph has a cycle"),
            FlowError::StepFailed {
                step,
                error,
                attempts,
            } => write!(f, "step '{step}' failed after {attempts} attempts: {error}"),
            FlowError::DuplicateStep(s) => write!(f, "duplicate step name '{s}'"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Per-step execution report.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step name.
    pub name: String,
    /// Measured wall seconds of the successful attempt.
    pub wall_secs: f64,
    /// Virtual seconds the step attributed to modeled resources.
    pub virtual_secs: f64,
    /// Attempts used (1 = first try succeeded).
    pub attempts: usize,
    /// Wave index the step ran in.
    pub wave: usize,
}

/// Whole-flow execution report.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Per-step reports in execution order.
    pub steps: Vec<StepReport>,
    /// Final scalar context (all step outputs merged).
    pub context: HashMap<String, f64>,
    /// Total measured wall seconds of the run.
    pub total_wall_secs: f64,
}

impl FlowReport {
    /// Sum of wall + virtual seconds along the executed waves (each wave
    /// costs its slowest step) — the end-to-end latency a user of the
    /// hosted services would observe.
    pub fn end_to_end_secs(&self) -> f64 {
        let max_wave = self.steps.iter().map(|s| s.wave).max().unwrap_or(0);
        (0..=max_wave)
            .map(|w| {
                self.steps
                    .iter()
                    .filter(|s| s.wave == w)
                    .map(|s| s.wall_secs + s.virtual_secs)
                    .fold(0.0f64, f64::max)
            })
            .sum()
    }

    /// Report for a named step.
    pub fn step(&self, name: &str) -> Option<&StepReport> {
        self.steps.iter().find(|s| s.name == name)
    }
}

/// A DAG of named steps.
#[derive(Default)]
pub struct Flow {
    steps: Vec<Step>,
    max_retries: usize,
}

impl Flow {
    /// An empty flow with no retries.
    pub fn new() -> Self {
        Flow {
            steps: Vec::new(),
            max_retries: 0,
        }
    }

    /// Sets the per-step retry budget (total attempts = retries + 1).
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Adds a step with dependencies. The step function receives the
    /// merged scalar context of all completed steps.
    pub fn step(
        mut self,
        name: &str,
        deps: &[&str],
        run: impl Fn(&HashMap<String, f64>) -> Result<StepOutcome, String> + Send + Sync + 'static,
    ) -> Self {
        self.steps.push(Step {
            name: name.to_string(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            run: Box::new(run),
        });
        self
    }

    /// Validates the DAG and computes the execution waves.
    fn waves(&self) -> Result<Vec<Vec<usize>>, FlowError> {
        let mut names = HashSet::new();
        for s in &self.steps {
            if !names.insert(s.name.as_str()) {
                return Err(FlowError::DuplicateStep(s.name.clone()));
            }
        }
        let index: HashMap<&str, usize> = self
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();
        for s in &self.steps {
            for d in &s.deps {
                if !index.contains_key(d.as_str()) {
                    return Err(FlowError::UnknownDependency {
                        step: s.name.clone(),
                        dependency: d.clone(),
                    });
                }
            }
        }

        let mut remaining: HashSet<usize> = (0..self.steps.len()).collect();
        let mut done: HashSet<usize> = HashSet::new();
        let mut waves = Vec::new();
        while !remaining.is_empty() {
            let mut wave: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| {
                    self.steps[i]
                        .deps
                        .iter()
                        .all(|d| done.contains(&index[d.as_str()]))
                })
                .collect();
            if wave.is_empty() {
                return Err(FlowError::Cycle);
            }
            wave.sort_unstable();
            for &i in &wave {
                remaining.remove(&i);
                done.insert(i);
            }
            waves.push(wave);
        }
        Ok(waves)
    }

    /// Executes the flow: waves in order, steps within a wave in parallel,
    /// each step retried up to the flow's budget.
    pub fn run(&self) -> Result<FlowReport, FlowError> {
        let waves = self.waves()?;
        let t0 = Instant::now();
        let mut context: HashMap<String, f64> = HashMap::new();
        let mut reports: Vec<StepReport> = Vec::with_capacity(self.steps.len());

        for (wave_idx, wave) in waves.iter().enumerate() {
            let ctx_snapshot = context.clone();
            let max_attempts = self.max_retries + 1;

            type WaveResult = (usize, Result<(StepOutcome, f64, usize), String>);
            let results: Vec<WaveResult> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|&i| {
                        let step = &self.steps[i];
                        let ctx = &ctx_snapshot;
                        scope.spawn(move || {
                            let mut last_err = String::new();
                            for attempt in 1..=max_attempts {
                                let t = Instant::now();
                                match (step.run)(ctx) {
                                    Ok(outcome) => {
                                        return (
                                            i,
                                            Ok((outcome, t.elapsed().as_secs_f64(), attempt)),
                                        )
                                    }
                                    Err(e) => last_err = e,
                                }
                            }
                            (i, Err(last_err))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (i, result) in results {
                let step = &self.steps[i];
                match result {
                    Ok((outcome, wall, attempts)) => {
                        for (k, v) in &outcome.outputs {
                            context.insert(k.clone(), *v);
                        }
                        reports.push(StepReport {
                            name: step.name.clone(),
                            wall_secs: wall,
                            virtual_secs: outcome.virtual_secs,
                            attempts,
                            wave: wave_idx,
                        });
                    }
                    Err(error) => {
                        return Err(FlowError::StepFailed {
                            step: step.name.clone(),
                            error,
                            attempts: max_attempts,
                        })
                    }
                }
            }
        }

        Ok(FlowReport {
            steps: reports,
            context,
            total_wall_secs: t0.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn linear_flow_threads_context() {
        let flow = Flow::new()
            .step("a", &[], |_| Ok(StepOutcome::none().with_output("x", 2.0)))
            .step("b", &["a"], |ctx| {
                Ok(StepOutcome::none().with_output("y", ctx["x"] * 3.0))
            })
            .step("c", &["b"], |ctx| {
                Ok(StepOutcome::none().with_output("z", ctx["y"] + 1.0))
            });
        let report = flow.run().unwrap();
        assert_eq!(report.context["z"], 7.0);
        assert_eq!(report.steps.len(), 3);
        assert_eq!(report.step("c").unwrap().wave, 2);
    }

    #[test]
    fn independent_steps_share_a_wave_and_run_parallel() {
        let flow = Flow::new()
            .step("a", &[], |_| {
                std::thread::sleep(std::time::Duration::from_millis(25));
                Ok(StepOutcome::none())
            })
            .step("b", &[], |_| {
                std::thread::sleep(std::time::Duration::from_millis(25));
                Ok(StepOutcome::none())
            })
            .step("join", &["a", "b"], |_| Ok(StepOutcome::none()));
        let t0 = Instant::now();
        let report = flow.run().unwrap();
        assert!(t0.elapsed().as_millis() < 45, "waves did not parallelize");
        assert_eq!(report.step("a").unwrap().wave, 0);
        assert_eq!(report.step("b").unwrap().wave, 0);
        assert_eq!(report.step("join").unwrap().wave, 1);
    }

    #[test]
    fn cycles_are_rejected() {
        let flow = Flow::new()
            .step("a", &["b"], |_| Ok(StepOutcome::none()))
            .step("b", &["a"], |_| Ok(StepOutcome::none()));
        assert_eq!(flow.run().unwrap_err(), FlowError::Cycle);
    }

    #[test]
    fn unknown_dependency_is_rejected() {
        let flow = Flow::new().step("a", &["ghost"], |_| Ok(StepOutcome::none()));
        match flow.run().unwrap_err() {
            FlowError::UnknownDependency { step, dependency } => {
                assert_eq!(step, "a");
                assert_eq!(dependency, "ghost");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let flow = Flow::new()
            .step("a", &[], |_| Ok(StepOutcome::none()))
            .step("a", &[], |_| Ok(StepOutcome::none()));
        assert_eq!(
            flow.run().unwrap_err(),
            FlowError::DuplicateStep("a".into())
        );
    }

    #[test]
    fn retries_recover_transient_failures() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let flow = Flow::new().with_retries(3).step("flaky", &[], move |_| {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(StepOutcome::none())
            }
        });
        let report = flow.run().unwrap();
        assert_eq!(report.step("flaky").unwrap().attempts, 3);
    }

    #[test]
    fn exhausted_retries_fail_the_flow() {
        let flow = Flow::new()
            .with_retries(1)
            .step("doomed", &[], |_| Err("always".to_string()));
        match flow.run().unwrap_err() {
            FlowError::StepFailed { step, attempts, .. } => {
                assert_eq!(step, "doomed");
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn end_to_end_includes_virtual_time() {
        let flow = Flow::new()
            .step("transfer", &[], |_| Ok(StepOutcome::virtual_time(5.0)))
            .step("compute", &["transfer"], |_| {
                Ok(StepOutcome::virtual_time(2.0))
            });
        let report = flow.run().unwrap();
        assert!(report.end_to_end_secs() >= 7.0);
        assert!(report.total_wall_secs < 1.0, "virtual time must not sleep");
    }
}
