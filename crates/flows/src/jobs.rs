//! A generic background job pool with cooperative cancellation and fair
//! multi-tenant scheduling.
//!
//! [`FuncExecutor`](crate::executor::FuncExecutor) wraps this pool behind a
//! funcX-style registry; [`JobPool`] is the underlying worker-pool pattern
//! made reusable for jobs that are *not* `&[f64] → Vec<f64>` functions —
//! most importantly the fairDMS training executor, where a job is "fine-tune
//! a model for up to N epochs" and must be cancellable mid-flight when a
//! newer trigger supersedes it.
//!
//! Each spawned job receives a [`CancelToken`]: a shared atomic flag the
//! submitter keeps a clone of. Cancellation is *cooperative* — raising the
//! flag never interrupts a thread; the job polls the token at its own safe
//! points (a trainer checks between epochs) and winds down. Jobs deliver
//! their results however they like (typically by sending a message back to
//! the submitting actor), which keeps the pool free of result-type
//! generics and lets one pool run heterogeneous job kinds.
//!
//! # Tenancy and fairness
//!
//! One pool can be shared by N tenants (DESIGN.md §14): every job is
//! enqueued under a [`TenantId`] into that tenant's own bounded FIFO, and
//! idle workers pick the next job by **deficit-weighted round-robin**
//! across the tenant queues. Each tenant holds a deficit counter; a worker
//! sweeps the tenants from a rotating cursor and serves the first
//! backlogged tenant with deficit remaining, decrementing it. When no
//! backlogged tenant has deficit left, every deficit refills to the
//! tenant's weight and the sweep repeats. The bound this buys: between two
//! jobs of one backlogged tenant with weight *w*, at most
//! `sum(other weights)` jobs of other tenants can be served per *w* of its
//! own — a flooding tenant cannot starve anyone.
//!
//! # Bounded admission
//!
//! Per-tenant queues are **bounded** ([`TenantQueueConfig::capacity`]).
//! A tenant that enqueues faster than the workers drain gets
//! [`QueueFull`] backpressure from [`JobPool::try_spawn_for`] — the
//! service layer answers `Busy` — instead of unbounded queue growth
//! (superseded-but-still-queued jobs used to pile up behind a long-running
//! job without limit). Queue depths are observable via [`JobPool::queued`]
//! for metrics gauges.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fairdms_check::thread::JoinHandle;

/// Identifies one tenant's queue inside a shared [`JobPool`]. Single-tenant
/// deployments use [`DEFAULT_TENANT`].
pub type TenantId = u32;

/// The tenant the single-tenant convenience API ([`JobPool::spawn`],
/// [`JobPool::spawn_with`]) submits under.
pub const DEFAULT_TENANT: TenantId = 0;

/// Default per-tenant queue capacity: generous enough that only a genuine
/// flood hits it, small enough that a flood is bounded memory.
pub const DEFAULT_TENANT_CAPACITY: usize = 1024;

/// Shared cancellation flag of one job.
///
/// Clonable and cheap; all clones observe the same flag. The underlying
/// atomic is exposed via [`CancelToken::flag`] so domain-specific controls
/// (e.g. `fairdms_nn::trainer::TrainControl`) can alias it without a
/// dependency between the crates.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The shared atomic behind the token, for bridging into other
    /// cancellation vocabularies that poll an `Arc<AtomicBool>`.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Per-tenant scheduling parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQueueConfig {
    /// Round-robin weight: how many jobs this tenant may take per deficit
    /// round relative to the others. Clamped to ≥ 1.
    pub weight: u32,
    /// Maximum queued (not yet running) jobs before
    /// [`JobPool::try_spawn_for`] answers [`QueueFull`].
    pub capacity: usize,
}

impl Default for TenantQueueConfig {
    fn default() -> Self {
        TenantQueueConfig {
            weight: 1,
            capacity: DEFAULT_TENANT_CAPACITY,
        }
    }
}

/// Admission refusal: the tenant's queue is at capacity. The job was *not*
/// enqueued; the caller owns the backpressure decision (the service layer
/// answers `Busy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The tenant whose queue is full.
    pub tenant: TenantId,
    /// That tenant's configured capacity.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} training queue is full ({} queued jobs)",
            self.tenant, self.capacity
        )
    }
}

impl std::error::Error for QueueFull {}

type Job = Box<dyn FnOnce(&CancelToken) + Send>;

struct TenantQueue {
    tenant: TenantId,
    weight: u32,
    capacity: usize,
    deficit: u32,
    jobs: VecDeque<(Job, CancelToken)>,
}

struct PoolState {
    tenants: Vec<TenantQueue>,
    /// Index into `tenants` where the next deficit sweep starts.
    cursor: usize,
    /// Total queued jobs across tenants (not counting running ones).
    queued: usize,
    shutdown: bool,
}

impl PoolState {
    fn tenant_mut(&mut self, tenant: TenantId) -> &mut TenantQueue {
        if let Some(i) = self.tenants.iter().position(|t| t.tenant == tenant) {
            return &mut self.tenants[i];
        }
        let cfg = TenantQueueConfig::default();
        self.tenants.push(TenantQueue {
            tenant,
            weight: cfg.weight,
            capacity: cfg.capacity,
            deficit: 0,
            jobs: VecDeque::new(),
        });
        self.tenants.last_mut().expect("just pushed")
    }

    /// Deficit-weighted round-robin pop: serve the first backlogged tenant
    /// with deficit remaining, starting at the cursor; if none, refill
    /// every deficit from the weights and sweep once more.
    fn pop_next(&mut self) -> Option<(Job, CancelToken)> {
        if self.queued == 0 {
            return None;
        }
        let n = self.tenants.len();
        for round in 0..2 {
            for i in 0..n {
                let idx = (self.cursor + i) % n;
                let t = &mut self.tenants[idx];
                if t.deficit > 0 && !t.jobs.is_empty() {
                    t.deficit -= 1;
                    // Exhausted deficit passes the turn; remaining deficit
                    // lets the tenant finish its weighted burst first.
                    self.cursor = if t.deficit == 0 { (idx + 1) % n } else { idx };
                    self.queued -= 1;
                    return self.tenants[idx].jobs.pop_front();
                }
            }
            debug_assert!(round == 0, "queued > 0 but no backlogged tenant found");
            for t in &mut self.tenants {
                t.deficit = t.weight.max(1);
            }
        }
        unreachable!("refilled deficits must admit one of the queued jobs")
    }
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signalled on every enqueue and on shutdown.
    available: Condvar,
}

/// A fixed pool of named worker threads draining per-tenant bounded queues
/// of cancellable jobs under deficit-weighted round-robin (see the module
/// docs for the fairness and admission contracts).
///
/// Submitters never block: admission either succeeds immediately or
/// answers [`QueueFull`], so backpressure is explicit and the actors that
/// submit training work stay responsive.
pub struct JobPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl JobPool {
    /// A pool of `workers` threads named `{name}-{i}`.
    pub fn new(workers: usize, name: &str) -> Self {
        assert!(workers > 0, "job pool needs at least one worker");
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                tenants: Vec::new(),
                cursor: 0,
                queued: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                // fairdms_check::thread — std passthrough normally; under
                // a model execution the worker becomes a model thread so
                // the checker can explore pool interleavings.
                fairdms_check::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .unwrap_or_else(|e| panic!("failed to spawn {name} worker: {e}"))
            })
            .collect();
        JobPool {
            inner,
            workers: handles,
        }
    }

    /// Sets (or creates) a tenant's weight and queue capacity. Jobs already
    /// queued are kept even if the new capacity is below the current depth;
    /// the bound applies to subsequent admissions.
    pub fn configure_tenant(&self, tenant: TenantId, cfg: TenantQueueConfig) {
        let mut st = self.inner.state.lock();
        let t = st.tenant_mut(tenant);
        t.weight = cfg.weight.max(1);
        t.capacity = cfg.capacity;
    }

    /// Submits a job for `tenant` under a caller-provided token. Answers
    /// [`QueueFull`] — without enqueueing — when the tenant's queue is at
    /// capacity. A job whose token is already cancelled when a worker picks
    /// it up still runs; it is expected to observe the token at its first
    /// safe point and return immediately.
    pub fn try_spawn_for(
        &self,
        tenant: TenantId,
        token: CancelToken,
        job: impl FnOnce(&CancelToken) + Send + 'static,
    ) -> Result<(), QueueFull> {
        {
            let mut st = self.inner.state.lock();
            assert!(!st.shutdown, "spawn after job pool shutdown");
            let t = st.tenant_mut(tenant);
            if t.jobs.len() >= t.capacity {
                return Err(QueueFull {
                    tenant,
                    capacity: t.capacity,
                });
            }
            t.jobs.push_back((Box::new(job), token));
            st.queued += 1;
        }
        self.inner.available.notify_one();
        Ok(())
    }

    /// Submits a job for [`DEFAULT_TENANT`] with a fresh token and returns
    /// the token, through which the submitter can later cancel (supersede)
    /// the job. Panics if the default tenant's queue is at capacity — the
    /// single-tenant convenience API treats a thousand-deep backlog as a
    /// bug, not a load condition; admission-aware callers use
    /// [`JobPool::try_spawn_for`].
    pub fn spawn(&self, job: impl FnOnce(&CancelToken) + Send + 'static) -> CancelToken {
        let token = CancelToken::new();
        self.spawn_with(token.clone(), job);
        token
    }

    /// Submits a job for [`DEFAULT_TENANT`] under a caller-provided token
    /// (lets the submitter register the token *before* the job can possibly
    /// run). Panics if the queue is at capacity; see [`JobPool::spawn`].
    pub fn spawn_with(&self, token: CancelToken, job: impl FnOnce(&CancelToken) + Send + 'static) {
        if let Err(full) = self.try_spawn_for(DEFAULT_TENANT, token, job) {
            panic!("job pool overflow on the non-admission-aware path: {full}");
        }
    }

    /// Whether `tenant` has queue capacity for one more job right now. A
    /// submitter that is the *only* enqueuer for its tenant (the fairDMS
    /// actor is, by construction) can use this as a race-free admission
    /// pre-check before committing resources to preparing the job.
    pub fn has_capacity(&self, tenant: TenantId) -> bool {
        let mut st = self.inner.state.lock();
        let t = st.tenant_mut(tenant);
        t.jobs.len() < t.capacity
    }

    /// Queued (not yet running) jobs of one tenant — the
    /// `training_jobs_queued` gauge.
    pub fn queued(&self, tenant: TenantId) -> usize {
        self.inner
            .state
            .lock()
            .tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .map_or(0, |t| t.jobs.len())
    }

    /// Queued (not yet running) jobs across all tenants.
    pub fn queued_total(&self) -> usize {
        self.inner.state.lock().queued
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let next = {
            let mut st = inner.state.lock();
            loop {
                match st.pop_next() {
                    Some(job) => break Some(job),
                    // Shutdown drains: exit only once every queue is empty.
                    None if st.shutdown => break None,
                    None => inner.available.wait(&mut st),
                }
            }
        };
        match next {
            Some((job, token)) => {
                // A panicking job must not shrink the pool: capacity
                // silently decaying one bad job at a time ends with every
                // later job queued forever. Failure delivery is the job's
                // own duty: any completion signal it owes (a result
                // channel, `FuncExecutor`'s task slot) must be wired to
                // fire during the unwind — channels disconnect when they
                // drop; Condvar-style slots need an armed drop-guard, or a
                // waiter blocks forever on a panic nothing ever reports.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&token)));
            }
            None => return,
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.inner.state.lock().shutdown = true;
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    use parking_lot::Mutex;

    #[test]
    fn jobs_run_and_deliver_results_through_their_own_channel() {
        let pool = JobPool::new(2, "test-pool");
        let (tx, rx) = crossbeam_channel::unbounded();
        for i in 0..8usize {
            let tx = tx.clone();
            pool.spawn(move |_| {
                tx.send(i * i).unwrap();
            });
        }
        let mut got: Vec<usize> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn cancellation_is_observable_inside_the_job() {
        let pool = JobPool::new(1, "cancel-pool");
        let (tx, rx) = crossbeam_channel::bounded(1);
        let seen = Arc::new(AtomicBool::new(false));
        let seen2 = Arc::clone(&seen);
        let token = pool.spawn(move |ctl| {
            // Epoch-loop stand-in: spin until the token is raised.
            let deadline = Instant::now() + Duration::from_secs(5);
            while !ctl.is_cancelled() && Instant::now() < deadline {
                std::thread::yield_now();
            }
            seen2.store(ctl.is_cancelled(), Ordering::Release);
            tx.send(()).unwrap();
        });
        token.cancel();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(seen.load(Ordering::Acquire), "job never saw the token");
        assert!(token.is_cancelled());
    }

    #[test]
    fn supersession_cancels_the_old_job_not_the_new_one() {
        // One worker ⇒ jobs serialize; cancelling job A must not leak into
        // job B's fresh token.
        let pool = JobPool::new(1, "supersede-pool");
        let log = Arc::new(Mutex::new(Vec::new()));
        let la = Arc::clone(&log);
        let a = pool.spawn(move |ctl| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while !ctl.is_cancelled() && Instant::now() < deadline {
                std::thread::yield_now();
            }
            la.lock().push(("a", ctl.is_cancelled()));
        });
        let lb = Arc::clone(&log);
        let b = pool.spawn(move |ctl| {
            lb.lock().push(("b", ctl.is_cancelled()));
        });
        a.cancel(); // supersede A; B keeps its own un-cancelled token
        drop(pool); // joins: A winds down, then B runs
        assert_eq!(*log.lock(), vec![("a", true), ("b", false)]);
        assert!(!b.is_cancelled());
    }

    #[test]
    fn drop_joins_all_workers_after_draining() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = JobPool::new(3, "drain-pool");
            for _ in 0..12 {
                let c = Arc::clone(&counter);
                pool.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop: shutdown notifies the workers, which drain, then join
        assert_eq!(counter.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn admission_is_bounded_per_tenant() {
        let pool = JobPool::new(1, "bounded-pool");
        pool.configure_tenant(
            7,
            TenantQueueConfig {
                weight: 1,
                capacity: 2,
            },
        );
        // Occupy the single worker so queued jobs cannot drain.
        let (hold_tx, hold_rx) = crossbeam_channel::bounded::<()>(1);
        let (running_tx, running_rx) = crossbeam_channel::bounded::<()>(1);
        pool.spawn(move |_| {
            running_tx.send(()).unwrap();
            let _ = hold_rx.recv();
        });
        running_rx.recv_timeout(Duration::from_secs(5)).unwrap();

        assert_eq!(pool.try_spawn_for(7, CancelToken::new(), |_| {}), Ok(()));
        assert_eq!(pool.try_spawn_for(7, CancelToken::new(), |_| {}), Ok(()));
        assert_eq!(
            pool.try_spawn_for(7, CancelToken::new(), |_| {}),
            Err(QueueFull {
                tenant: 7,
                capacity: 2
            })
        );
        assert_eq!(pool.queued(7), 2);
        // Another tenant is unaffected by 7's full queue.
        assert_eq!(pool.try_spawn_for(8, CancelToken::new(), |_| {}), Ok(()));
        assert_eq!(pool.queued_total(), 3); // tenant 7's two + tenant 8's one
        hold_tx.send(()).unwrap();
        drop(pool);
    }

    #[test]
    fn deficit_round_robin_interleaves_backlogged_tenants() {
        let pool = JobPool::new(1, "drr-pool");
        let order = Arc::new(Mutex::new(Vec::new()));
        // Occupy the worker while both backlogs build, so the scheduling
        // decision happens with everything queued.
        let (hold_tx, hold_rx) = crossbeam_channel::bounded::<()>(1);
        let (running_tx, running_rx) = crossbeam_channel::bounded::<()>(1);
        pool.spawn(move |_| {
            running_tx.send(()).unwrap();
            let _ = hold_rx.recv();
        });
        running_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        for i in 0..4u32 {
            for tenant in [1u32, 2u32] {
                let order = Arc::clone(&order);
                pool.try_spawn_for(tenant, CancelToken::new(), move |_| {
                    order.lock().push((tenant, i));
                })
                .unwrap();
            }
        }
        hold_tx.send(()).unwrap();
        drop(pool); // drains, then joins
        let got = order.lock().clone();
        assert_eq!(got.len(), 8);
        // Equal weights ⇒ strict alternation: never two consecutive jobs
        // from the same tenant while the other is backlogged.
        for w in got.windows(2) {
            assert_ne!(w[0].0, w[1].0, "tenants must alternate: {got:?}");
        }
        // FIFO within each tenant.
        for tenant in [1u32, 2u32] {
            let seq: Vec<u32> = got
                .iter()
                .filter(|(t, _)| *t == tenant)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(seq, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn weights_bias_the_round_robin() {
        let pool = JobPool::new(1, "weight-pool");
        pool.configure_tenant(
            1,
            TenantQueueConfig {
                weight: 3,
                capacity: 64,
            },
        );
        pool.configure_tenant(
            2,
            TenantQueueConfig {
                weight: 1,
                capacity: 64,
            },
        );
        let order = Arc::new(Mutex::new(Vec::new()));
        let (hold_tx, hold_rx) = crossbeam_channel::bounded::<()>(1);
        let (running_tx, running_rx) = crossbeam_channel::bounded::<()>(1);
        pool.spawn(move |_| {
            running_tx.send(()).unwrap();
            let _ = hold_rx.recv();
        });
        running_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        for tenant in [1u32, 2u32] {
            for _ in 0..6 {
                let order = Arc::clone(&order);
                pool.try_spawn_for(tenant, CancelToken::new(), move |_| {
                    order.lock().push(tenant);
                })
                .unwrap();
            }
        }
        hold_tx.send(()).unwrap();
        drop(pool);
        let got = order.lock().clone();
        // First deficit round: three of tenant 1, one of tenant 2.
        assert_eq!(&got[..4], &[1, 1, 1, 2], "weighted burst order: {got:?}");
        assert_eq!(got.iter().filter(|&&t| t == 1).count(), 6);
        assert_eq!(got.iter().filter(|&&t| t == 2).count(), 6);
    }
}
