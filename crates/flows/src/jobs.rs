//! A generic background job pool with cooperative cancellation.
//!
//! [`FuncExecutor`](crate::executor::FuncExecutor) wraps this pool behind a
//! funcX-style registry; [`JobPool`] is the underlying worker-pool pattern
//! made reusable for jobs that are *not* `&[f64] → Vec<f64>` functions —
//! most importantly the fairDMS training executor, where a job is "fine-tune
//! a model for up to N epochs" and must be cancellable mid-flight when a
//! newer trigger supersedes it.
//!
//! Each spawned job receives a [`CancelToken`]: a shared atomic flag the
//! submitter keeps a clone of. Cancellation is *cooperative* — raising the
//! flag never interrupts a thread; the job polls the token at its own safe
//! points (a trainer checks between epochs) and winds down. Jobs deliver
//! their results however they like (typically by sending a message back to
//! the submitting actor), which keeps the pool free of result-type
//! generics and lets one pool run heterogeneous job kinds.

use crossbeam_channel::{unbounded, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fairdms_check::thread::JoinHandle;

/// Shared cancellation flag of one job.
///
/// Clonable and cheap; all clones observe the same flag. The underlying
/// atomic is exposed via [`CancelToken::flag`] so domain-specific controls
/// (e.g. `fairdms_nn::trainer::TrainControl`) can alias it without a
/// dependency between the crates.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The shared atomic behind the token, for bridging into other
    /// cancellation vocabularies that poll an `Arc<AtomicBool>`.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

enum PoolMsg {
    Run(Box<dyn FnOnce(&CancelToken) + Send>, CancelToken),
    Shutdown,
}

/// A fixed pool of named worker threads draining a queue of cancellable
/// jobs.
///
/// The queue is unbounded by design: submitters are actors that must never
/// block on the pool (backpressure belongs at *their* admission edge), and
/// supersession keeps the queue short — a superseded job is cancelled, runs
/// to its next safe point, and drains quickly.
pub struct JobPool {
    queue: Sender<PoolMsg>,
    workers: Vec<JoinHandle<()>>,
}

impl JobPool {
    /// A pool of `workers` threads named `{name}-{i}`.
    pub fn new(workers: usize, name: &str) -> Self {
        assert!(workers > 0, "job pool needs at least one worker");
        let (tx, rx) = unbounded::<PoolMsg>();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                // fairdms_check::thread — std passthrough normally; under
                // a model execution the worker becomes a model thread so
                // the checker can explore pool interleavings.
                fairdms_check::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                PoolMsg::Run(job, token) => {
                                    // A panicking job must not shrink the
                                    // pool: capacity silently decaying one
                                    // bad job at a time ends with every
                                    // later job queued forever. Failure
                                    // delivery is the job's own duty: any
                                    // completion signal it owes (a result
                                    // channel, `FuncExecutor`'s task slot)
                                    // must be wired to fire during the
                                    // unwind — channels disconnect when
                                    // they drop; Condvar-style slots need
                                    // an armed drop-guard, or a waiter
                                    // blocks forever on a panic nothing
                                    // ever reports.
                                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                        || job(&token),
                                    ));
                                }
                                PoolMsg::Shutdown => break,
                            }
                        }
                    })
                    .unwrap_or_else(|e| panic!("failed to spawn {name} worker: {e}"))
            })
            .collect();
        JobPool {
            queue: tx,
            workers: handles,
        }
    }

    /// Submits a job with a fresh token and returns the token, through
    /// which the submitter can later cancel (supersede) the job.
    pub fn spawn(&self, job: impl FnOnce(&CancelToken) + Send + 'static) -> CancelToken {
        let token = CancelToken::new();
        self.spawn_with(token.clone(), job);
        token
    }

    /// Submits a job under a caller-provided token (lets the submitter
    /// register the token *before* the job can possibly run). A job whose
    /// token is already cancelled when a worker picks it up still runs —
    /// it is expected to observe the token at its first safe point and
    /// return immediately.
    pub fn spawn_with(&self, token: CancelToken, job: impl FnOnce(&CancelToken) + Send + 'static) {
        if self.queue.send(PoolMsg::Run(Box::new(job), token)).is_err() {
            unreachable!("job pool queue disconnected before shutdown");
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.queue.send(PoolMsg::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    use parking_lot::Mutex;

    #[test]
    fn jobs_run_and_deliver_results_through_their_own_channel() {
        let pool = JobPool::new(2, "test-pool");
        let (tx, rx) = crossbeam_channel::unbounded();
        for i in 0..8usize {
            let tx = tx.clone();
            pool.spawn(move |_| {
                tx.send(i * i).unwrap();
            });
        }
        let mut got: Vec<usize> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn cancellation_is_observable_inside_the_job() {
        let pool = JobPool::new(1, "cancel-pool");
        let (tx, rx) = crossbeam_channel::bounded(1);
        let seen = Arc::new(AtomicBool::new(false));
        let seen2 = Arc::clone(&seen);
        let token = pool.spawn(move |ctl| {
            // Epoch-loop stand-in: spin until the token is raised.
            let deadline = Instant::now() + Duration::from_secs(5);
            while !ctl.is_cancelled() && Instant::now() < deadline {
                std::thread::yield_now();
            }
            seen2.store(ctl.is_cancelled(), Ordering::Release);
            tx.send(()).unwrap();
        });
        token.cancel();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(seen.load(Ordering::Acquire), "job never saw the token");
        assert!(token.is_cancelled());
    }

    #[test]
    fn supersession_cancels_the_old_job_not_the_new_one() {
        // One worker ⇒ jobs serialize; cancelling job A must not leak into
        // job B's fresh token.
        let pool = JobPool::new(1, "supersede-pool");
        let log = Arc::new(Mutex::new(Vec::new()));
        let la = Arc::clone(&log);
        let a = pool.spawn(move |ctl| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while !ctl.is_cancelled() && Instant::now() < deadline {
                std::thread::yield_now();
            }
            la.lock().push(("a", ctl.is_cancelled()));
        });
        let lb = Arc::clone(&log);
        let b = pool.spawn(move |ctl| {
            lb.lock().push(("b", ctl.is_cancelled()));
        });
        a.cancel(); // supersede A; B keeps its own un-cancelled token
        drop(pool); // joins: A winds down, then B runs
        assert_eq!(*log.lock(), vec![("a", true), ("b", false)]);
        assert!(!b.is_cancelled());
    }

    #[test]
    fn drop_joins_all_workers_after_draining() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = JobPool::new(3, "drain-pool");
            for _ in 0..12 {
                let c = Arc::clone(&counter);
                pool.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop: shutdown messages queue behind the jobs, then join
        assert_eq!(counter.load(Ordering::Relaxed), 12);
    }
}
