//! Model checks for [`fairdms_flows::FuncExecutor`]'s panic-completion
//! protocol: a function that panics inside a pool worker must still
//! resolve its [`TaskHandle`] — `wait()` returns an `Err` instead of
//! blocking on the condvar forever, and `try_take()` polling terminates
//! (DESIGN.md §11).
//!
//! Run with `cargo test -p fairdms-flows --features check --test model_executor`.
#![cfg(feature = "check")]

use std::sync::Arc;

use fairdms_check::{FailureKind, Model};
use fairdms_flows::FuncExecutor;
use parking_lot::{Condvar, Mutex};

/// The flagship executor model: two workers, one panicking task and one
/// healthy one, every interleaving of submission, execution, unwind and
/// wait. The panic must surface as `Err` and must not poison the
/// unrelated task or shrink the pool.
#[test]
fn executor_panic_vs_wait_exhaustive() {
    let report = Model::with_preemption_bound(2).check_exhaustive(|| {
        let ex = FuncExecutor::new(2);
        ex.register("boom", |_| -> Result<Vec<f64>, String> {
            panic!("deliberate model panic")
        });
        ex.register("ok", |args| Ok(vec![args[0] + 1.0]));
        let boom = ex.submit("boom", &[]).unwrap();
        let ok = ex.submit("ok", &[41.0]).unwrap();
        let err = boom
            .wait()
            .expect_err("a panicked function must surface as Err");
        assert!(err.contains("panicked"), "unhelpful error: {err}");
        assert_eq!(
            ok.wait().unwrap(),
            vec![42.0],
            "panic poisoned an unrelated task"
        );
    });
    report.assert_pass("FuncExecutor panic-during-call vs wait");
    report.assert_min_interleavings(1_000, "FuncExecutor panic-during-call vs wait");
    assert!(report.exhausted, "schedule space not exhausted");
}

/// `try_take()` must never block and a panicked task must eventually
/// resolve it. The poll loop is bounded (a model thread busy-polling
/// forever would be a genuine livelock, and the scheduler would say so);
/// the fallback `wait()` covers schedules where the worker hasn't run yet.
#[test]
fn executor_panic_vs_try_take_exhaustive() {
    let report = Model::with_preemption_bound(3).check_exhaustive(|| {
        let ex = FuncExecutor::new(1);
        ex.register("boom", |_| -> Result<Vec<f64>, String> {
            panic!("deliberate model panic")
        });
        let h = ex.submit("boom", &[]).unwrap();
        let mut taken = None;
        for _ in 0..2 {
            taken = h.try_take();
            if taken.is_some() {
                break;
            }
        }
        let result = match taken {
            Some(r) => r,
            None => h.wait(),
        };
        assert!(result.is_err(), "panicked task resolved as success");
    });
    report.assert_pass("FuncExecutor panic-during-call vs try_take");
}

/// Seeded random sweep over a deeper workload: three tasks racing two
/// workers, the middle one panicking.
#[test]
fn executor_random_sweep() {
    let report = Model::default().check_random(0xfa1d_0003, 300, || {
        let ex = FuncExecutor::new(2);
        ex.register("id", |args| Ok(args.to_vec()));
        ex.register("boom", |_| -> Result<Vec<f64>, String> {
            panic!("deliberate model panic")
        });
        let a = ex.submit("id", &[1.0]).unwrap();
        let b = ex.submit("boom", &[]).unwrap();
        let c = ex.submit("id", &[3.0]).unwrap();
        assert_eq!(a.wait().unwrap(), vec![1.0]);
        assert!(b.wait().is_err());
        assert_eq!(c.wait().unwrap(), vec![3.0]);
    });
    report.assert_pass("FuncExecutor random sweep");
}

// ---------------------------------------------------------------------------
// Mutation: the completion drop-guard deleted
// ---------------------------------------------------------------------------

/// The executor's task-slot protocol with the armed drop-guard
/// deliberately removed: the worker catches the panic (so the pool
/// survives) but nothing fills the slot or notifies the condvar — the
/// waiter blocks forever. The model must report the deadlock, naming
/// the parked waiter.
fn broken_no_guard_scenario() {
    type Slot = (Mutex<Option<Result<Vec<f64>, String>>>, Condvar);
    let slot: Arc<Slot> = Arc::new((Mutex::new(None), Condvar::new()));
    let worker = {
        let slot = Arc::clone(&slot);
        fairdms_check::thread::spawn(move || {
            // BUG (deliberate): no completion guard armed before the call.
            // The real executor installs one in `FuncExecutor::submit` so
            // the unwind itself delivers the `Err`.
            let result =
                std::panic::catch_unwind(|| -> Vec<f64> { panic!("deliberate model panic") });
            if let Ok(v) = result {
                *slot.0.lock() = Some(Ok(v));
                slot.1.notify_all();
            }
        })
    };
    // TaskHandle::wait(), inlined.
    let mut guard = slot.0.lock();
    while guard.is_none() {
        slot.1.wait(&mut guard);
    }
    drop(guard);
    worker.join().expect("worker panicked");
}

/// Checked-in replay trace reproducing the missing-guard deadlock
/// (regression: must keep failing without a search). Regenerate with
/// `broken_no_guard_is_caught` if a scheduler change shifts yield points.
const BROKEN_NO_GUARD_TRACE: &str = "0,0,1";

#[test]
fn broken_no_guard_is_caught() {
    let model = Model::default();
    let report = model.check_exhaustive(broken_no_guard_scenario);
    let failure = report
        .failure
        .expect("the model missed the deleted completion guard");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{}", failure.message);

    let replay = model.replay(&failure.trace.to_string(), broken_no_guard_scenario);
    let replayed = replay
        .failure
        .expect("trace did not reproduce the deadlock");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
}

/// The checked-in trace (no search) still reproduces the deadlock.
#[test]
fn broken_no_guard_checked_in_trace_replays() {
    let replay = Model::default().replay(BROKEN_NO_GUARD_TRACE, broken_no_guard_scenario);
    let failure = replay
        .failure
        .expect("checked-in trace no longer reproduces the missing-guard deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{}", failure.message);
}
