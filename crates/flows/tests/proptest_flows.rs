//! Property tests for the flow runner: random layered DAGs must execute
//! every step exactly once, in dependency order, with correct context
//! propagation.

use fairdms_flows::{Flow, StepOutcome};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Builds a random layered DAG: `layers` layers of up to `width` steps;
/// each step depends on a random subset of the previous layer.
fn layered_flow(
    layer_sizes: &[usize],
    dep_mask: &[u8],
    log: Arc<Mutex<Vec<String>>>,
) -> (Flow, Vec<(String, Vec<String>)>) {
    let mut flow = Flow::new();
    let mut structure = Vec::new();
    let mut mask_idx = 0usize;
    let mut prev_layer: Vec<String> = Vec::new();
    for (li, &sz) in layer_sizes.iter().enumerate() {
        let mut this_layer = Vec::new();
        for s in 0..sz {
            let name = format!("L{li}S{s}");
            let mut deps: Vec<String> = Vec::new();
            for p in &prev_layer {
                let bit = dep_mask.get(mask_idx).copied().unwrap_or(0);
                mask_idx += 1;
                if bit % 2 == 1 {
                    deps.push(p.clone());
                }
            }
            // Keep the DAG connected layer-to-layer.
            if deps.is_empty() && !prev_layer.is_empty() {
                deps.push(prev_layer[0].clone());
            }
            let log2 = Arc::clone(&log);
            let name2 = name.clone();
            let dep_refs: Vec<&str> = deps.iter().map(|d| d.as_str()).collect();
            flow = flow.step(&name, &dep_refs, move |_| {
                log2.lock().push(name2.clone());
                Ok(StepOutcome::none())
            });
            structure.push((name.clone(), deps));
            this_layer.push(name);
        }
        prev_layer = this_layer;
    }
    (flow, structure)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_dags_run_every_step_in_dependency_order(
        layer_sizes in proptest::collection::vec(1usize..4, 1..4),
        dep_mask in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let (flow, structure) = layered_flow(&layer_sizes, &dep_mask, Arc::clone(&log));
        let report = flow.run().expect("layered DAGs are acyclic");
        let order = log.lock().clone();

        let total: usize = layer_sizes.iter().sum();
        prop_assert_eq!(order.len(), total);
        prop_assert_eq!(report.steps.len(), total);

        // Every dependency finished before its dependent started.
        let position: HashMap<&String, usize> =
            order.iter().enumerate().map(|(i, n)| (n, i)).collect();
        for (name, deps) in &structure {
            for d in deps {
                prop_assert!(
                    position[&d.clone()] < position[&name.clone()],
                    "{d} must precede {name}"
                );
            }
        }

        // Wave indexes are consistent with dependencies too.
        let wave: HashMap<String, usize> = report
            .steps
            .iter()
            .map(|s| (s.name.clone(), s.wave))
            .collect();
        for (name, deps) in &structure {
            for d in deps {
                prop_assert!(wave[d] < wave[name]);
            }
        }
    }

    #[test]
    fn retries_execute_expected_attempt_counts(
        fail_times in 0usize..4,
        retries in 0usize..4,
    ) {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let flow = Flow::new().with_retries(retries).step("s", &[], move |_| {
            if c.fetch_add(1, Ordering::SeqCst) < fail_times {
                Err("transient".into())
            } else {
                Ok(StepOutcome::none())
            }
        });
        let result = flow.run();
        if fail_times <= retries {
            let report = result.expect("should eventually succeed");
            prop_assert_eq!(report.step("s").unwrap().attempts, fail_times + 1);
        } else {
            prop_assert!(result.is_err());
            prop_assert_eq!(counter.load(Ordering::SeqCst), retries + 1);
        }
    }

    #[test]
    fn context_outputs_accumulate_across_layers(values in proptest::collection::vec(-100.0f64..100.0, 1..6)) {
        let mut flow = Flow::new();
        let mut prev: Option<String> = None;
        for (i, v) in values.iter().enumerate() {
            let name = format!("s{i}");
            let key = format!("v{i}");
            let deps: Vec<&str> = prev.as_deref().map(|p| vec![p]).unwrap_or_default();
            let v = *v;
            let deps_owned: Vec<String> = deps.iter().map(|s| s.to_string()).collect();
            let dep_refs: Vec<&str> = deps_owned.iter().map(|s| s.as_str()).collect();
            flow = flow.step(&name, &dep_refs, move |_| {
                Ok(StepOutcome::none().with_output(&key, v))
            });
            prev = Some(name);
        }
        let report = flow.run().unwrap();
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(report.context[&format!("v{i}")], *v);
        }
    }
}
