//! Multi-tenant fairness and isolation contracts of [`JobPool`]
//! (DESIGN.md §14).
//!
//! These are the starvation guarantees the service layer's shared training
//! executor leans on: a tenant flooding retrain jobs can neither starve
//! another tenant's single update nor cancel its work. The tests hold the
//! pool's only worker on a channel while backlogs build, so every
//! scheduling decision happens against a fully queued state and the
//! assertions are deterministic — no timing, no sleeps.

use fairdms_flows::jobs::{CancelToken, JobPool, TenantQueueConfig};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FLOODER: u32 = 1;
const VICTIM: u32 = 2;

/// Holds the pool's single worker until the returned sender fires, so jobs
/// queued behind it cannot drain while a test stages its backlog.
fn hold_worker(pool: &JobPool) -> crossbeam_channel::Sender<()> {
    let (hold_tx, hold_rx) = crossbeam_channel::bounded::<()>(1);
    let (running_tx, running_rx) = crossbeam_channel::bounded::<()>(1);
    pool.spawn(move |_| {
        running_tx.send(()).unwrap();
        let _ = hold_rx.recv();
    });
    running_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("holder job never started");
    hold_tx
}

/// Tenant A floods 64 retrain-shaped jobs; tenant B submits one update.
/// Deficit-weighted round-robin must serve B within `sum(other weights)`
/// jobs — here one A-job — no matter how deep A's backlog is.
#[test]
fn flooding_tenant_cannot_starve_a_single_job() {
    let pool = JobPool::new(1, "starve-pool");
    let hold = hold_worker(&pool);
    let order: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..64 {
        let order = Arc::clone(&order);
        pool.try_spawn_for(FLOODER, CancelToken::new(), move |_| {
            order.lock().push(FLOODER);
        })
        .unwrap();
    }
    let order2 = Arc::clone(&order);
    pool.try_spawn_for(VICTIM, CancelToken::new(), move |_| {
        order2.lock().push(VICTIM);
    })
    .unwrap();
    hold.send(()).unwrap();
    drop(pool); // drains all 65 jobs, then joins
    let got = order.lock().clone();
    assert_eq!(got.len(), 65);
    let victim_pos = got
        .iter()
        .position(|&t| t == VICTIM)
        .expect("victim job must run");
    assert!(
        victim_pos <= 1,
        "equal weights bound the victim's wait to one flooder job, \
         but it ran at position {victim_pos}: {got:?}"
    );
}

/// Same flood, but the victim tenant carries a higher weight: its whole
/// batch of updates clears within one deficit round while the flooder gets
/// exactly its weight's worth in between.
#[test]
fn weights_bound_the_wait_under_flood() {
    let pool = JobPool::new(1, "weighted-starve-pool");
    pool.configure_tenant(
        VICTIM,
        TenantQueueConfig {
            weight: 4,
            capacity: 16,
        },
    );
    let hold = hold_worker(&pool);
    let order: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..32 {
        let order = Arc::clone(&order);
        pool.try_spawn_for(FLOODER, CancelToken::new(), move |_| {
            order.lock().push(FLOODER);
        })
        .unwrap();
    }
    for _ in 0..4 {
        let order = Arc::clone(&order);
        pool.try_spawn_for(VICTIM, CancelToken::new(), move |_| {
            order.lock().push(VICTIM);
        })
        .unwrap();
    }
    hold.send(()).unwrap();
    drop(pool);
    let got = order.lock().clone();
    assert_eq!(got.len(), 36);
    let last_victim = got
        .iter()
        .rposition(|&t| t == VICTIM)
        .expect("victim jobs must run");
    // One full deficit round serves 4 victim + 1 flooder jobs; wherever the
    // cursor started, all four victim jobs land within the first 5 slots.
    assert!(
        last_victim <= 4,
        "weight-4 victim must clear within one deficit round: {got:?}"
    );
}

/// Supersession is per-tenant by construction: a token cancels exactly the
/// job it was minted for, so tenant A superseding its own in-flight update
/// can never touch tenant B's queued or running work — and vice versa.
#[test]
fn supersession_never_crosses_tenants() {
    let pool = JobPool::new(1, "cross-supersede-pool");
    let log: Arc<Mutex<Vec<(u32, bool)>>> = Arc::new(Mutex::new(Vec::new()));

    // Tenant A's in-flight job: spins until its own token is raised, like
    // a trainer polling at epoch boundaries.
    let a_token = CancelToken::new();
    let la = Arc::clone(&log);
    pool.try_spawn_for(FLOODER, a_token.clone(), move |ctl| {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !ctl.is_cancelled() && Instant::now() < deadline {
            std::thread::yield_now();
        }
        la.lock().push((FLOODER, ctl.is_cancelled()));
    })
    .unwrap();

    // Tenant B's job queued behind it, with its own token.
    let b_token = CancelToken::new();
    let lb = Arc::clone(&log);
    pool.try_spawn_for(VICTIM, b_token.clone(), move |ctl| {
        lb.lock().push((VICTIM, ctl.is_cancelled()));
    })
    .unwrap();

    // A supersedes its own job. B's token must stay untouched.
    a_token.cancel();
    assert!(!b_token.is_cancelled(), "cancel leaked across tenants");
    drop(pool); // A winds down cancelled, then B runs clean

    let got = log.lock().clone();
    assert_eq!(
        got,
        vec![(FLOODER, true), (VICTIM, false)],
        "A must observe its cancel; B must run un-cancelled"
    );
    assert!(!b_token.is_cancelled());
}
