//! Offline shim for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the macro-driven property-testing surface this workspace's
//! test suites use: the [`proptest!`] macro with per-block
//! `proptest_config`, range/`any`/`Just`/string-pattern strategies,
//! `prop_map` / `prop_recursive`, `collection::vec` / `collection::btree_map`,
//! [`prop_oneof!`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! * **Deterministic seeding.** Cases derive from a fixed seed so failures
//!   reproduce run-to-run; there is no persisted failure file.
//! * String patterns support exactly the `[chars]{m,n}` character-class
//!   form the workspace uses, not full regex.
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG (self-contained splitmix64/xoshiro mix)
// ---------------------------------------------------------------------

/// Deterministic test-case RNG.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        let x = self.next_u64() as u128;
        ((x.wrapping_mul(n as u128)) >> 64) as usize
    }
}

// ---------------------------------------------------------------------
// Core strategy abstraction
// ---------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind an `Arc` (cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds a recursive strategy: values are drawn from this base or from
    /// up to `depth` applications of `f` over it, chosen uniformly.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("non-empty").clone();
            levels.push(f(prev).boxed());
        }
        union(levels)
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (the engine behind
/// [`prop_oneof!`] and `prop_recursive`).
pub fn union<V: 'static>(options: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
    assert!(!options.is_empty(), "union of zero strategies");
    BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
        let i = rng.next_index(options.len());
        options[i].generate(rng)
    }))
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy over a type's full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                self.start + r as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                lo + r as $t
            }
        }
    )*};
}

impl_strategy_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_strategy_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_strategy_signed_range!(i64, i32, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

// Tuples of strategies generate tuples of values.
macro_rules! impl_strategy_tuple {
    ($(($($s:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

// ---------------------------------------------------------------------
// String pattern strategy: "[class]{m,n}"
// ---------------------------------------------------------------------

fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pattern.chars().collect();
    let open = 0;
    assert!(
        bytes.get(open) == Some(&'['),
        "string strategy shim supports only '[class]{{m,n}}' patterns, got {pattern:?}"
    );
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
    let mut chars = Vec::new();
    let class = &bytes[1..close];
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            for c in lo..=hi {
                chars.push(char::from_u32(c).expect("valid char range"));
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let rest: String = bytes[close + 1..].iter().collect();
    let rest = rest.trim();
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("expected {{m,n}} repetition in {pattern:?}"));
        match inner.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("repetition lower bound"),
                n.trim().parse().expect("repetition upper bound"),
            ),
            None => {
                let exact: usize = inner.trim().parse().expect("repetition count");
                (exact, exact)
            }
        }
    };
    assert!(!chars.is_empty(), "empty character class in {pattern:?}");
    assert!(min <= max, "inverted repetition in {pattern:?}");
    (chars, min, max)
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_char_class(self);
        let len = min + rng.next_index(max - min + 1);
        (0..len)
            .map(|_| chars[rng.next_index(chars.len())])
            .collect()
    }
}

// ---------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------

/// `proptest::collection`: strategies over containers.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size bounds for a generated container.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.next_index(self.max - self.min + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` (size is best-effort: duplicate keys
    /// collapse, exactly as in the real crate).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `btree_map(key, value, size)` — a map strategy.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

// ---------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------

/// Per-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by [`prop_assume!`]; draw another.
    Reject,
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

/// Drives one property: draws up to `cases` accepted inputs, retrying
/// rejected draws up to a global attempt cap.
pub fn run_property<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let max_attempts = (config.cases as u64) * 20 + 100;
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property '{name}': too many rejected cases ({attempts} attempts \
             for {} accepted)",
            accepted
        );
        // Seed derived from the attempt index: failures reproduce exactly.
        let mut rng = TestRng::seeded(0x00FA_1DD5_u64.wrapping_add(attempts * 0x1357_9BDF));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at attempt {attempts}: {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Vetoes the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($a), stringify!($b), left, right, format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, f in -2.0f32..2.0, s in "[a-z]{1,8}") {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_map_strategies((v, m) in (
            crate::collection::vec(any::<u8>(), 0..16),
            crate::collection::btree_map("[a-c]{1,2}", 0i64..10, 0..4),
        )) {
            prop_assert!(v.len() < 16);
            prop_assert!(m.len() <= 4); // duplicate keys may collapse
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1i64), 10i64..20, any::<bool>().prop_map(|b| b as i64)]) {
            prop_assert!(x == 0 || x == 1 || (10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_context() {
        crate::run_property(ProptestConfig::with_cases(1), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn recursive_strategies_terminate() {
        let strat = (0u8..10).prop_recursive(2, 8, 4, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(|v| v[0])
        });
        let mut rng = crate::TestRng::seeded(1);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v < 10);
        }
    }
}
