//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: cheap clones, allocation-free
//! cross-thread sharing, and slice access through `Deref` — the three
//! properties the document store and model zoo rely on. The real crate's
//! zero-copy splitting APIs are not implemented because nothing in the
//! workspace uses them.
#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// A buffer from a static slice (copied here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Shared view of the contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3]);
    }

    #[test]
    fn empty_and_eq_slice() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![7u8]), vec![7u8]);
    }
}
