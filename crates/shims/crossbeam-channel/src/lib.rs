//! Offline shim for [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel).
//!
//! Multi-producer **multi-consumer** channels built on a
//! `Mutex<VecDeque>` + two condvars. Semantics match the subset the
//! workspace uses:
//!
//! * [`bounded`] / [`unbounded`] constructors;
//! * cloneable [`Sender`] / [`Receiver`] with sender/receiver reference
//!   counting — `recv` on an empty channel fails once every sender is gone,
//!   `send` fails once every receiver is gone;
//! * `send` blocks on a full bounded channel; `try_send` returns
//!   [`TrySendError::Full`]; zero-capacity channels rendezvous through a
//!   one-slot buffer (adequate for the signalling patterns used here);
//! * `try_recv` / `recv_timeout` for polling consumers.
//!
//! The real crate's `select!` macro is intentionally not provided; the
//! service layer was restructured around explicit control messages instead.
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[cfg(feature = "check")]
use fairdms_check::rt;

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline elapsed with no message.
    Timeout,
    /// Empty and every sender is gone.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    /// `usize::MAX` encodes "unbounded"; zero-capacity channels use 1 (a
    /// rendezvous slot) so signalling still works.
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    /// Base model resource: the channel's happens-before clock (every
    /// send releases into it, every successful recv acquires from it).
    #[cfg(feature = "check")]
    fn res(&self) -> u64 {
        rt::obj_id(self)
    }

    /// Model wait-queue for "channel has a message".
    #[cfg(feature = "check")]
    fn res_not_empty(&self) -> u64 {
        rt::sub_res(self.res(), 1)
    }

    /// Model wait-queue for "channel has spare capacity".
    #[cfg(feature = "check")]
    fn res_not_full(&self) -> u64 {
        rt::sub_res(self.res(), 2)
    }

    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::Acquire) == 0
    }
}

/// The sending half (cloneable).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half (cloneable; receivers compete for messages).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel with a capacity bound.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(cap.max(1))
}

/// Creates a channel without a capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake receivers blocked on an empty queue.
            self.chan.not_empty.notify_all();
            #[cfg(feature = "check")]
            if rt::is_model_thread() {
                rt::unblock_all(self.chan.res_not_empty());
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver: wake senders blocked on a full queue.
            self.chan.not_full.notify_all();
            #[cfg(feature = "check")]
            if rt::is_model_thread() {
                rt::unblock_all(self.chan.res_not_full());
            }
        }
    }
}

impl<T> Sender<T> {
    /// Model-thread send: the real mutex is only held between yield
    /// points (never across one), and full-channel blocking goes through
    /// the scheduler instead of the condvar.
    #[cfg(feature = "check")]
    #[track_caller]
    fn send_model(&self, value: T) -> Result<(), SendError<T>> {
        loop {
            rt::op_yield("channel send");
            {
                let mut q = self.chan.queue.lock().expect("channel mutex");
                if self.chan.disconnected_rx() {
                    return Err(SendError(value));
                }
                if q.len() < self.chan.capacity {
                    q.push_back(value);
                    drop(q);
                    rt::sync_release(self.chan.res());
                    rt::unblock_all(self.chan.res_not_empty());
                    return Ok(());
                }
            }
            rt::block_on(self.chan.res_not_full(), false, "channel send (full)");
        }
    }

    /// Sends, blocking while the channel is full. Fails only when every
    /// receiver is gone.
    #[track_caller]
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            return self.send_model(value);
        }
        let mut q = self.chan.queue.lock().expect("channel mutex");
        loop {
            if self.chan.disconnected_rx() {
                return Err(SendError(value));
            }
            if q.len() < self.chan.capacity {
                q.push_back(value);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            q = self.chan.not_full.wait(q).expect("channel mutex");
        }
    }

    /// Sends without blocking.
    #[track_caller]
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            rt::op_yield("channel try_send");
        }
        let mut q = self.chan.queue.lock().expect("channel mutex");
        if self.chan.disconnected_rx() {
            return Err(TrySendError::Disconnected(value));
        }
        if q.len() >= self.chan.capacity {
            return Err(TrySendError::Full(value));
        }
        q.push_back(value);
        self.chan.not_empty.notify_one();
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            drop(q);
            rt::sync_release(self.chan.res());
            rt::unblock_all(self.chan.res_not_empty());
            return Ok(());
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Model-thread receive: mirror of `send_model`.
    #[cfg(feature = "check")]
    #[track_caller]
    fn recv_model(&self) -> Result<T, RecvError> {
        loop {
            rt::op_yield("channel recv");
            {
                let mut q = self.chan.queue.lock().expect("channel mutex");
                if let Some(v) = q.pop_front() {
                    drop(q);
                    rt::sync_acquire(self.chan.res());
                    rt::unblock_all(self.chan.res_not_full());
                    return Ok(v);
                }
                if self.chan.disconnected_tx() {
                    return Err(RecvError);
                }
            }
            rt::block_on(self.chan.res_not_empty(), false, "channel recv (empty)");
        }
    }

    /// Receives, blocking while the channel is empty. Fails only when the
    /// channel is empty and every sender is gone.
    #[track_caller]
    pub fn recv(&self) -> Result<T, RecvError> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            return self.recv_model();
        }
        let mut q = self.chan.queue.lock().expect("channel mutex");
        loop {
            if let Some(v) = q.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if self.chan.disconnected_tx() {
                return Err(RecvError);
            }
            q = self.chan.not_empty.wait(q).expect("channel mutex");
        }
    }

    /// Receives without blocking.
    #[track_caller]
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            rt::op_yield("channel try_recv");
        }
        let mut q = self.chan.queue.lock().expect("channel mutex");
        if let Some(v) = q.pop_front() {
            self.chan.not_full.notify_one();
            #[cfg(feature = "check")]
            if rt::is_model_thread() {
                drop(q);
                rt::sync_acquire(self.chan.res());
                rt::unblock_all(self.chan.res_not_full());
                return Ok(v);
            }
            return Ok(v);
        }
        if self.chan.disconnected_tx() {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Model-thread timed receive. The model has no wall clock: the
    /// timeout "fires" exactly when no other thread can make progress
    /// first — the scheduler's deadlock-resolution rule — which both
    /// keeps schedules time-independent and exercises the timeout path.
    #[cfg(feature = "check")]
    #[track_caller]
    fn recv_timeout_model(&self) -> Result<T, RecvTimeoutError> {
        loop {
            rt::op_yield("channel recv_timeout");
            {
                let mut q = self.chan.queue.lock().expect("channel mutex");
                if let Some(v) = q.pop_front() {
                    drop(q);
                    rt::sync_acquire(self.chan.res());
                    rt::unblock_all(self.chan.res_not_full());
                    return Ok(v);
                }
                if self.chan.disconnected_tx() {
                    return Err(RecvTimeoutError::Disconnected);
                }
            }
            let wake = rt::block_on(self.chan.res_not_empty(), true, "channel recv_timeout");
            if wake == rt::Wake::Timeout {
                let mut q = self.chan.queue.lock().expect("channel mutex");
                if let Some(v) = q.pop_front() {
                    drop(q);
                    rt::sync_acquire(self.chan.res());
                    rt::unblock_all(self.chan.res_not_full());
                    return Ok(v);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Receives, blocking at most `timeout`.
    #[track_caller]
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            return self.recv_timeout_model();
        }
        let deadline = Instant::now() + timeout;
        let mut q = self.chan.queue.lock().expect("channel mutex");
        loop {
            if let Some(v) = q.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if self.chan.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(q, deadline - now)
                .expect("channel mutex");
            q = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let t = thread::spawn(move || tx.send(3)); // blocks until a recv
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(9).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_all_receivers_disconnects() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
    }

    #[test]
    fn mpmc_consumers_partition_messages() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
    }
}
