//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! minimal API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f32`/`f64`/`u64`, and
//! [`Rng::gen_range`] over integer ranges. The generator is xoshiro256++
//! seeded through SplitMix64 — the same construction the real `rand_pcg` /
//! small-rng family uses for statistical quality without cryptographic
//! claims. Streams are deterministic per seed, which is all the workspace
//! relies on (it never asks for OS entropy).
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (the subset of `rand::Rng` the workspace calls).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of type `T` (`f32`/`f64` in `[0, 1)`, integers over
    /// their full range).
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: RangeSample,
        R: IntoBounds<T>,
    {
        let (lo, hi_inclusive) = range.into_bounds();
        T::sample_inclusive(self, lo, hi_inclusive)
    }
}

/// Conversion of raw bits to a uniform sample.
pub trait Uniform {
    /// Maps 64 uniform bits to a sample.
    fn from_u64(bits: u64) -> Self;
}

impl Uniform for f32 {
    fn from_u64(bits: u64) -> f32 {
        // 24 high-quality mantissa bits → [0, 1).
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform for f64 {
    fn from_u64(bits: u64) -> f64 {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for u64 {
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}

impl Uniform for u32 {
    fn from_u64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

/// Types samplable from a range by rejection-free modulo reduction.
pub trait RangeSample: Copy + PartialOrd {
    /// A uniform sample in `[lo, hi]` (inclusive).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: inverted range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any bits qualify.
                    return rng.next_u64() as $t;
                }
                // 128-bit widening multiply avoids modulo bias for the
                // span sizes used here (Lemire's method).
                let x = rng.next_u64() as u128;
                let r = (x.wrapping_mul(span)) >> 64;
                (lo as u128).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_range_sample_int!(usize, u64, u32, u16, u8, i64, i32, isize);

impl RangeSample for f32 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * rng.gen::<f32>()
    }
}

impl RangeSample for f64 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * rng.gen::<f64>()
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait IntoBounds<T> {
    /// `(lo, hi)` with `hi` inclusive.
    fn into_bounds(self) -> (T, T);
}

impl IntoBounds<usize> for Range<usize> {
    fn into_bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "gen_range: empty range");
        (self.start, self.end - 1)
    }
}

impl IntoBounds<u64> for Range<u64> {
    fn into_bounds(self) -> (u64, u64) {
        assert!(self.start < self.end, "gen_range: empty range");
        (self.start, self.end - 1)
    }
}

impl IntoBounds<i64> for Range<i64> {
    fn into_bounds(self) -> (i64, i64) {
        assert!(self.start < self.end, "gen_range: empty range");
        (self.start, self.end - 1)
    }
}

impl IntoBounds<f32> for Range<f32> {
    fn into_bounds(self) -> (f32, f32) {
        (self.start, self.end)
    }
}

impl IntoBounds<f64> for Range<f64> {
    fn into_bounds(self) -> (f64, f64) {
        (self.start, self.end)
    }
}

impl<T: Copy> IntoBounds<T> for RangeInclusive<T> {
    fn into_bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — deterministic, fast, and
    /// statistically solid for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [0usize; 5];
        for _ in 0..5_000 {
            seen[r.gen_range(0..5usize)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 800), "{seen:?}");
        for _ in 0..100 {
            let v = r.gen_range(2..=4usize);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
