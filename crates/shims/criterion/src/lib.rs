//! Offline shim for [`criterion`](https://crates.io/crates/criterion).
//!
//! A straightforward timing harness behind the criterion API surface the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark warms up, then runs timed samples and prints
//! mean / p50 / p99 per-iteration times. There is no statistical outlier
//! analysis, plotting, or baseline persistence.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched setup output is passed to the routine (accepted for
/// API compatibility; the shim always moves the batch in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    /// Per-iteration wall times collected by the harness.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded
    /// from measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let mut inputs = Vec::with_capacity(self.iters_per_sample as usize);
            for _ in 0..self.iters_per_sample {
                inputs.push(setup());
            }
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn run_bench(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up pass: one sample of one iteration to estimate cost.
        let mut probe = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: 1,
        };
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            probe.samples.clear();
            f(&mut probe);
            if probe.samples.is_empty() {
                break; // closure did not call iter — nothing to time
            }
        }
        let per_iter = probe
            .samples
            .first()
            .copied()
            .unwrap_or(Duration::from_micros(1))
            .max(Duration::from_nanos(50));
        // Pick iterations so sample_size samples fit the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters =
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: iters,
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        report(name, &mut bencher.samples);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_bench(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_bench(&name, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; exists for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let p50 = samples[samples.len() / 2];
    let p99 = samples[((samples.len() * 99) / 100).min(samples.len() - 1)];
    println!(
        "{name:<44} mean {:>12?}  p50 {:>12?}  p99 {:>12?}  ({} samples)",
        mean,
        p50,
        p99,
        samples.len()
    );
}

/// Prevents the optimizer from eliding a value (re-export shape).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: `criterion_group!{name = benches; config =
/// expr; targets = f1, f2}` or `criterion_group!(benches, f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched_iters_work() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |x| x * x, BatchSize::SmallInput)
        });
        group.finish();
    }
}
