//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly, and a panic while
//! holding a lock does not poison it for later users (poison errors are
//! swallowed via `into_inner`, matching parking_lot semantics closely
//! enough for this workspace's usage).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock (poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during wait")
    }
}

/// A reader–writer lock (poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring before returning (parking_lot signature: the guard is
    /// updated in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard already taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let slot = Arc::new((Mutex::new(None::<i32>), Condvar::new()));
        let s2 = Arc::clone(&slot);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *s2.0.lock() = Some(42);
            s2.1.notify_all();
        });
        let mut g = slot.0.lock();
        while g.is_none() {
            slot.1.wait(&mut g);
        }
        assert_eq!(*g, Some(42));
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("while holding");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still usable
    }
}
