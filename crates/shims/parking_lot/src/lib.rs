//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly, and a panic while
//! holding a lock does not poison it for later users (poison errors are
//! swallowed via `into_inner`, matching parking_lot semantics closely
//! enough for this workspace's usage).
//!
//! Under the `check` feature every operation performed on a
//! `fairdms-check` model thread becomes a scheduler yield point: locks
//! acquire through a try-lock/park loop driven by the model scheduler
//! (never blocking in the OS), guards report release on drop, and
//! condvar wait/notify are modeled entirely in the scheduler. Threads
//! outside a model execution — and all builds without the feature — take
//! the plain std path.
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

#[cfg(feature = "check")]
use fairdms_check::rt;

/// A mutual-exclusion lock (poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard.
    guard: Option<sync::MutexGuard<'a, T>>,
    /// Model resource id to release on drop (model threads only).
    #[cfg(feature = "check")]
    model_res: Option<u64>,
    /// Owning lock, for the model condvar's explicit re-lock.
    #[cfg(feature = "check")]
    owner: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn mk_guard<'a>(&'a self, g: sync::MutexGuard<'a, T>, _res: Option<u64>) -> MutexGuard<'a, T> {
        MutexGuard {
            guard: Some(g),
            #[cfg(feature = "check")]
            model_res: _res,
            #[cfg(feature = "check")]
            owner: self,
        }
    }

    /// Model-thread acquisition: a try-lock/park loop where the
    /// scheduler decides who runs between attempts. Never blocks in the
    /// OS, so the model can explore and diagnose contention.
    #[cfg(feature = "check")]
    #[track_caller]
    fn lock_model(&self) -> MutexGuard<'_, T> {
        let res = rt::obj_id(self);
        loop {
            rt::op_yield("mutex lock");
            match self.inner.try_lock() {
                Ok(g) => {
                    rt::lock_acquired(res);
                    return self.mk_guard(g, Some(res));
                }
                Err(sync::TryLockError::Poisoned(p)) => {
                    rt::lock_acquired(res);
                    return self.mk_guard(p.into_inner(), Some(res));
                }
                Err(sync::TryLockError::WouldBlock) => {
                    rt::block_on(res, false, "mutex lock");
                }
            }
        }
    }

    /// Acquires the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            return self.lock_model();
        }
        self.mk_guard(
            self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            None,
        )
    }

    /// Tries to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "check")]
        let model_res = if rt::is_model_thread() {
            rt::op_yield("mutex try_lock");
            Some(rt::obj_id(self))
        } else {
            None
        };
        #[cfg(not(feature = "check"))]
        let model_res = None;
        match self.inner.try_lock() {
            Ok(g) => {
                #[cfg(feature = "check")]
                if let Some(res) = model_res {
                    rt::lock_acquired(res);
                }
                Some(self.mk_guard(g, model_res))
            }
            Err(sync::TryLockError::Poisoned(p)) => {
                #[cfg(feature = "check")]
                if let Some(res) = model_res {
                    rt::lock_acquired(res);
                }
                Some(self.mk_guard(p.into_inner(), model_res))
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "check")]
        if let Some(res) = self.model_res {
            // Really unlock first, then tell the scheduler: a woken
            // waiter must find the std lock free when it runs.
            self.guard.take();
            rt::lock_released(res);
        }
    }
}

/// A reader–writer lock (poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: Option<sync::RwLockReadGuard<'a, T>>,
    #[cfg(feature = "check")]
    model_res: Option<u64>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: Option<sync::RwLockWriteGuard<'a, T>>,
    #[cfg(feature = "check")]
    model_res: Option<u64>,
}

impl<T> RwLock<T> {
    /// Creates a reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    ///
    /// Under the model, read locks participate in the lock-order graph
    /// exactly like exclusive locks (conservative: a reported
    /// read/read "cycle" may be benign, but mixed cycles are real).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            let res = rt::obj_id(self);
            loop {
                rt::op_yield("rwlock read");
                match self.inner.try_read() {
                    Ok(g) => {
                        rt::lock_acquired(res);
                        return RwLockReadGuard {
                            guard: Some(g),
                            model_res: Some(res),
                        };
                    }
                    Err(sync::TryLockError::Poisoned(p)) => {
                        rt::lock_acquired(res);
                        return RwLockReadGuard {
                            guard: Some(p.into_inner()),
                            model_res: Some(res),
                        };
                    }
                    Err(sync::TryLockError::WouldBlock) => {
                        rt::block_on(res, false, "rwlock read");
                    }
                }
            }
        }
        RwLockReadGuard {
            guard: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(feature = "check")]
            model_res: None,
        }
    }

    /// Acquires an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            let res = rt::obj_id(self);
            loop {
                rt::op_yield("rwlock write");
                match self.inner.try_write() {
                    Ok(g) => {
                        rt::lock_acquired(res);
                        return RwLockWriteGuard {
                            guard: Some(g),
                            model_res: Some(res),
                        };
                    }
                    Err(sync::TryLockError::Poisoned(p)) => {
                        rt::lock_acquired(res);
                        return RwLockWriteGuard {
                            guard: Some(p.into_inner()),
                            model_res: Some(res),
                        };
                    }
                    Err(sync::TryLockError::WouldBlock) => {
                        rt::block_on(res, false, "rwlock write");
                    }
                }
            }
        }
        RwLockWriteGuard {
            guard: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(feature = "check")]
            model_res: None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present until drop")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present until drop")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "check")]
        if let Some(res) = self.model_res {
            self.guard.take();
            rt::lock_released(res);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "check")]
        if let Some(res) = self.model_res {
            self.guard.take();
            rt::lock_released(res);
        }
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring before returning (parking_lot signature: the guard is
    /// updated in place).
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "check")]
        if let Some(res) = guard.model_res {
            let cv = rt::obj_id(self);
            // Really unlock, then atomically (from the model's view)
            // record the release and park as a waiter of `cv`.
            guard.guard.take();
            rt::cv_wait(cv, res);
            // Notified and scheduled: reacquire through the model loop.
            loop {
                match guard.owner.inner.try_lock() {
                    Ok(g) => {
                        rt::lock_acquired(res);
                        guard.guard = Some(g);
                        return;
                    }
                    Err(sync::TryLockError::Poisoned(p)) => {
                        rt::lock_acquired(res);
                        guard.guard = Some(p.into_inner());
                        return;
                    }
                    Err(sync::TryLockError::WouldBlock) => {
                        rt::block_on(res, false, "condvar re-lock");
                    }
                }
            }
        }
        let std_guard = guard.guard.take().expect("guard already taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            rt::cv_notify(rt::obj_id(self), false);
            return true;
        }
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        #[cfg(feature = "check")]
        if rt::is_model_thread() {
            rt::cv_notify(rt::obj_id(self), true);
            return 0;
        }
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let slot = Arc::new((Mutex::new(None::<i32>), Condvar::new()));
        let s2 = Arc::clone(&slot);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *s2.0.lock() = Some(42);
            s2.1.notify_all();
        });
        let mut g = slot.0.lock();
        while g.is_none() {
            slot.1.wait(&mut g);
        }
        assert_eq!(*g, Some(42));
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("while holding");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still usable
    }
}
