//! Offline shim for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the parallel-iterator subset this workspace uses — enough to
//! keep the GEMM/clustering/labeling hot paths genuinely parallel without
//! registry access. Work is executed with `std::thread::scope`, splitting
//! the index space into one contiguous chunk per worker. That is a cruder
//! schedule than rayon's work stealing, but the workspace's kernels are
//! uniform per element, where contiguous chunking is within noise of
//! stealing.
//!
//! Supported surface:
//!
//! * `slice.par_iter()`, `(0..n).into_par_iter()`, `vec.into_par_iter()`
//!   with `.enumerate()`, `.map(...)`, `.for_each(...)`, `.collect()`,
//!   `.sum()`;
//! * `slice.par_iter_mut()` and `slice.par_chunks_mut(n)` with
//!   `.enumerate().for_each(...)`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] (pool width applies to
//!   work submitted from inside the closure).
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::marker::PhantomData;

thread_local! {
    /// Pool-width override installed by [`ThreadPool::install`].
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Worker count for the calling context.
fn pool_width() -> usize {
    // Under a fairdms-check model execution, parallel kernels run
    // sequentially: the scheduler owns thread interleaving, and data-
    // parallel work over disjoint chunks has no schedule-dependent
    // behaviour worth exploring (it would only blow up the state space).
    #[cfg(feature = "check")]
    if fairdms_check::rt::is_model_thread() {
        return 1;
    }
    let over = POOL_OVERRIDE.with(|c| c.get());
    if over > 0 {
        return over;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `f(i)` for `i in 0..n` in parallel, returning results in order.
fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = pool_width().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (w, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let base = w * chunk;
            scope.spawn(move || {
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("worker filled every slot"))
        .collect()
}

/// Runs `f` over an owned list of work items split across the pool.
fn run_partitioned<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = items.len();
    let workers = pool_width().min(n.max(1));
    if workers <= 1 || n <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = items;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let batch: Vec<T> = rest.drain(..take).collect();
            scope.spawn(move || batch.into_iter().for_each(f));
        }
    });
}

/// A lazily-evaluated parallel pipeline: an index space `0..len` plus a
/// per-index producer. All combinators compose producers; terminals execute
/// through [`run_indexed`].
pub struct ParPipeline<T, F> {
    len: usize,
    produce: F,
    _marker: PhantomData<fn() -> T>,
}

impl<T, F> ParPipeline<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    fn new(len: usize, produce: F) -> Self {
        ParPipeline {
            len,
            produce,
            _marker: PhantomData,
        }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParPipeline<(usize, T), impl Fn(usize) -> (usize, T) + Sync> {
        let p = self.produce;
        ParPipeline::new(self.len, move |i| (i, p(i)))
    }

    /// Maps each item.
    pub fn map<U, G>(self, g: G) -> ParPipeline<U, impl Fn(usize) -> U + Sync>
    where
        U: Send,
        G: Fn(T) -> U + Sync,
    {
        let p = self.produce;
        ParPipeline::new(self.len, move |i| g(p(i)))
    }

    /// Maps each item to an iterator and flattens, preserving item order.
    pub fn flat_map<U, I, G>(self, g: G) -> ParFlatMap<I, impl Fn(usize) -> I + Sync>
    where
        U: Send,
        I: IntoIterator<Item = U> + Send,
        G: Fn(T) -> I + Sync,
    {
        let p = self.produce;
        ParFlatMap {
            len: self.len,
            produce: move |i| g(p(i)),
            _marker: PhantomData,
        }
    }

    /// Runs the pipeline for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(T) + Sync,
    {
        let p = self.produce;
        run_indexed(self.len, |i| g(p(i)));
    }

    /// Collects results in index order.
    pub fn collect<C: FromParPipeline<T>>(self) -> C {
        C::from_pipeline(run_indexed(self.len, self.produce))
    }

    /// Sums the produced items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + Send,
        T: Send,
    {
        run_indexed(self.len, self.produce).into_iter().sum()
    }
}

/// A flat-mapped parallel pipeline (inner iterators evaluated in parallel,
/// flattened in index order at collection time).
pub struct ParFlatMap<I, F> {
    len: usize,
    produce: F,
    _marker: PhantomData<fn() -> I>,
}

impl<I, F> ParFlatMap<I, F>
where
    I: IntoIterator + Send,
    I::Item: Send,
    F: Fn(usize) -> I + Sync,
{
    /// Collects the flattened results in index order.
    pub fn collect<C: FromParPipeline<I::Item>>(self) -> C {
        let nested = run_indexed(self.len, self.produce);
        C::from_pipeline(nested.into_iter().flatten().collect())
    }
}

/// Collection types a pipeline can collect into.
pub trait FromParPipeline<T> {
    /// Builds the collection from in-order results.
    fn from_pipeline(items: Vec<T>) -> Self;
}

impl<T> FromParPipeline<T> for Vec<T> {
    fn from_pipeline(items: Vec<T>) -> Self {
        items
    }
}

/// `par_iter` over shared slices.
pub trait ParIterSlice<T: Sync> {
    /// A parallel iterator of `&T`.
    fn par_iter<'a>(&'a self) -> ParPipeline<&'a T, impl Fn(usize) -> &'a T + Sync>;
}

impl<T: Sync> ParIterSlice<T> for [T] {
    fn par_iter<'a>(&'a self) -> ParPipeline<&'a T, impl Fn(usize) -> &'a T + Sync> {
        ParPipeline::new(self.len(), move |i| &self[i])
    }
}

impl<T: Sync> ParIterSlice<T> for Vec<T> {
    fn par_iter<'a>(&'a self) -> ParPipeline<&'a T, impl Fn(usize) -> &'a T + Sync> {
        ParPipeline::new(self.len(), move |i| &self[i])
    }
}

/// `into_par_iter` over owned index spaces and vectors.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into a parallel pipeline.
    fn into_par_iter(self) -> ParPipeline<Self::Item, impl Fn(usize) -> Self::Item + Sync>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParPipeline<usize, impl Fn(usize) -> usize + Sync> {
        let start = self.start;
        let len = self.end.saturating_sub(self.start);
        ParPipeline::new(len, move |i| start + i)
    }
}

/// Mutable parallel iteration over slices.
pub trait ParIterMutSlice<T: Send> {
    /// One exclusive reference per element.
    fn par_iter_mut(&mut self) -> ParMut<'_, T>;
    /// Exclusive chunks of `size` elements (last may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParIterMutSlice<T> for [T] {
    fn par_iter_mut(&mut self) -> ParMut<'_, T> {
        ParMut { slice: self }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: zero chunk size");
        ParChunksMut { slice: self, size }
    }
}

impl<T: Send> ParIterMutSlice<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> ParMut<'_, T> {
        self.as_mut_slice().par_iter_mut()
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(size)
    }
}

/// Parallel `&mut T` iterator.
pub struct ParMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParMut<'a, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParMutEnumerate<'a, T> {
        ParMutEnumerate { slice: self.slice }
    }

    /// Applies `g` to every element in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(&mut T) + Sync,
    {
        let items: Vec<&mut T> = self.slice.iter_mut().collect();
        run_partitioned(items, g);
    }
}

/// Enumerated parallel `&mut T` iterator.
pub struct ParMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParMutEnumerate<'_, T> {
    /// Applies `g(i, &mut item)` to every element in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn((usize, &mut T)) + Sync,
    {
        let items: Vec<(usize, &mut T)> = self.slice.iter_mut().enumerate().collect();
        run_partitioned(items, |(i, r)| g((i, r)));
    }
}

/// Parallel exclusive-chunk iterator.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Applies `g` to every chunk in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(&mut [T]) + Sync,
    {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.size).collect();
        run_partitioned(chunks, g);
    }
}

/// Enumerated parallel exclusive-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Applies `g(i, chunk)` to every chunk in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> = self.slice.chunks_mut(self.size).enumerate().collect();
        run_partitioned(chunks, |(i, c)| g((i, c)));
    }
}

/// Builder for a fixed-width pool (shim: the width is a thread-local
/// override applied while [`ThreadPool::install`] runs).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A new builder with the default width.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, BuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Pool construction error (the shim never fails; the type exists so
/// `.unwrap()`/`?` call sites compile).
#[derive(Debug)]
pub struct BuildError;

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for BuildError {}

/// A scoped pool-width override.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width governing nested parallel work
    /// submitted from inside `f` on the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.num_threads));
        let out = f();
        POOL_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

/// The prelude, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIterMutSlice, ParIterSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn par_iter_enumerate_map_sum() {
        let data = vec![1.0f64; 512];
        let s: f64 = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x * i as f64)
            .sum();
        assert_eq!(s, (0..512).sum::<usize>() as f64);
    }

    #[test]
    fn chunks_mut_writes_disjoint_regions() {
        let mut buf = vec![0usize; 103];
        buf.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(buf.iter().all(|&v| v > 0));
        assert_eq!(buf[0], 1);
        assert_eq!(buf[102], 11);
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut buf = vec![0i64; 97];
        buf.par_iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as i64);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn install_overrides_width() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let out: Vec<usize> = pool.install(|| (0..64usize).into_par_iter().map(|i| i).collect());
        assert_eq!(out.len(), 64);
    }
}
