//! Clustering quality metrics: silhouette coefficient and Davies–Bouldin
//! index.
//!
//! The elbow method (the paper's K-selection procedure) looks only at WSS;
//! these two metrics add the standard external checks used in the ablation
//! harness to validate that the K the elbow picks is also reasonable by
//! separation/compactness criteria:
//!
//! * **Silhouette** ∈ [-1, 1], higher is better: per-sample
//!   `(b - a) / max(a, b)` where `a` is mean intra-cluster distance and
//!   `b` the mean distance to the nearest other cluster.
//! * **Davies–Bouldin** ≥ 0, lower is better: average over clusters of the
//!   worst ratio `(σᵢ + σⱼ) / d(cᵢ, cⱼ)` of within-cluster scatter to
//!   between-center separation.
//!
//! Both are `O(n²)` / `O(n·k)` respectively and parallelized over samples
//! with rayon.

use crate::kmeans::KMeans;
use fairdms_tensor::{ops::sq_dist, Tensor};
use rayon::prelude::*;

/// Mean silhouette coefficient of `data` under `assignments`.
///
/// Returns 0.0 when every sample sits in one cluster (the coefficient is
/// undefined there; 0 is the conventional "no structure" score). Samples
/// that are alone in their cluster contribute 0, per the standard
/// definition.
///
/// Panics when `assignments.len()` differs from the number of rows or when
/// an assignment is `>= k`.
pub fn silhouette(data: &Tensor, assignments: &[usize], k: usize) -> f64 {
    assert_eq!(data.rank(), 2, "silhouette expects [n, d] data");
    let n = data.shape()[0];
    let d = data.shape()[1];
    assert_eq!(assignments.len(), n, "assignment/sample count mismatch");
    assert!(
        assignments.iter().all(|&a| a < k),
        "assignment out of range for k={k}"
    );
    let mut counts = vec![0usize; k];
    for &a in assignments {
        counts[a] += 1;
    }
    if counts.iter().filter(|&&c| c > 0).count() < 2 {
        return 0.0;
    }

    let raw = data.data();
    let total: f64 = (0..n)
        .into_par_iter()
        .map(|i| {
            if counts[assignments[i]] <= 1 {
                return 0.0;
            }
            // Mean distance from sample i to every cluster.
            let mut sums = vec![0.0f64; k];
            let xi = &raw[i * d..(i + 1) * d];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let dist = sq_dist(xi, &raw[j * d..(j + 1) * d]).sqrt() as f64;
                sums[assignments[j]] += dist;
            }
            let own = assignments[i];
            let a = sums[own] / (counts[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && counts[c] > 0)
                .map(|c| sums[c] / counts[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if a.max(b) == 0.0 {
                0.0
            } else {
                (b - a) / a.max(b)
            }
        })
        .sum();
    total / n as f64
}

/// Davies–Bouldin index of a fitted model on `data`.
///
/// Lower is better; 0 means perfectly compact, well-separated clusters.
/// Clusters that receive no samples are excluded. Returns 0.0 when fewer
/// than two clusters are populated.
pub fn davies_bouldin(data: &Tensor, model: &KMeans) -> f64 {
    assert_eq!(data.rank(), 2, "davies_bouldin expects [n, d] data");
    let n = data.shape()[0];
    let d = data.shape()[1];
    let k = model.k();
    let assignments = model.predict(data);

    // Per-cluster mean distance to center (scatter σ).
    let raw = data.data();
    let mut scatter = vec![0.0f64; k];
    let mut counts = vec![0usize; k];
    for i in 0..n {
        let a = assignments[i];
        scatter[a] += sq_dist(&raw[i * d..(i + 1) * d], model.centers().row(a)).sqrt() as f64;
        counts[a] += 1;
    }
    let populated: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
    if populated.len() < 2 {
        return 0.0;
    }
    for &c in &populated {
        scatter[c] /= counts[c] as f64;
    }

    let db: f64 = populated
        .par_iter()
        .map(|&i| {
            populated
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| {
                    let sep = sq_dist(model.centers().row(i), model.centers().row(j)).sqrt() as f64;
                    if sep == 0.0 {
                        f64::INFINITY
                    } else {
                        (scatter[i] + scatter[j]) / sep
                    }
                })
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .sum();
    db / populated.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansConfig;
    use fairdms_tensor::rng::TensorRng;

    fn blobs(n_per: usize, spread: f32, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = TensorRng::seeded(seed);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                data.push(c[0] + rng.next_normal_with(0.0, spread));
                data.push(c[1] + rng.next_normal_with(0.0, spread));
                labels.push(ci);
            }
        }
        (Tensor::from_vec(data, &[n_per * 3, 2]), labels)
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (data, labels) = blobs(30, 0.3, 0);
        let s = silhouette(&data, &labels, 3);
        assert!(s > 0.8, "tight separated blobs should score near 1: {s}");
    }

    #[test]
    fn silhouette_degrades_with_overlap() {
        let (tight, lt) = blobs(30, 0.3, 1);
        let (loose, ll) = blobs(30, 4.0, 1);
        let st = silhouette(&tight, &lt, 3);
        let sl = silhouette(&loose, &ll, 3);
        assert!(st > sl, "tight {st} should beat loose {sl}");
    }

    #[test]
    fn silhouette_is_invariant_under_label_permutation() {
        let (data, labels) = blobs(20, 0.3, 2);
        let rotated: Vec<usize> = labels.iter().map(|&l| (l + 1) % 3).collect();
        let a = silhouette(&data, &labels, 3);
        let b = silhouette(&data, &rotated, 3);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn silhouette_negative_for_clusters_that_mix_blobs() {
        let (data, _) = blobs(20, 0.3, 2);
        // Interleave assignments so every "cluster" spans all three blobs:
        // intra-cluster distances dwarf nearest-cluster distances.
        let wrong: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let s = silhouette(&data, &wrong, 3);
        assert!(s < 0.0, "blob-mixing clusters should be negative: {s}");
    }

    #[test]
    fn silhouette_degenerate_cases() {
        let (data, _) = blobs(10, 0.3, 3);
        // One cluster: undefined → 0.
        assert_eq!(silhouette(&data, &vec![0; 30], 1), 0.0);
        // Singleton clusters contribute 0, not NaN.
        let mut labels = vec![0usize; 30];
        labels[0] = 1;
        let s = silhouette(&data, &labels, 2);
        assert!(s.is_finite());
    }

    #[test]
    fn davies_bouldin_prefers_correct_k() {
        let (data, _) = blobs(40, 0.4, 4);
        let db = |k: usize| {
            let model = KMeans::fit(&data, &KMeansConfig::new(k));
            davies_bouldin(&data, &model)
        };
        let at3 = db(3);
        assert!(at3 < db(2), "k=3 ({at3}) should beat k=2");
        assert!(at3 < db(7), "k=3 ({at3}) should beat k=7");
    }

    #[test]
    fn davies_bouldin_improves_with_separation() {
        let (tight, _) = blobs(30, 0.3, 5);
        let (loose, _) = blobs(30, 3.0, 5);
        let m_tight = KMeans::fit(&tight, &KMeansConfig::new(3));
        let m_loose = KMeans::fit(&loose, &KMeansConfig::new(3));
        assert!(davies_bouldin(&tight, &m_tight) < davies_bouldin(&loose, &m_loose));
    }

    #[test]
    fn davies_bouldin_single_cluster_is_zero() {
        let (data, _) = blobs(10, 0.3, 6);
        let model = KMeans::fit(&data, &KMeansConfig::new(1));
        assert_eq!(davies_bouldin(&data, &model), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn silhouette_rejects_wrong_lengths() {
        let (data, _) = blobs(5, 0.3, 7);
        silhouette(&data, &[0, 1], 2);
    }
}
