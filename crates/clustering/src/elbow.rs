//! Elbow-method selection of the cluster count K.
//!
//! The paper automates K selection with YellowBrick's KElbowVisualizer
//! (§II-A): fit K-means for a range of K, record the within-cluster sum of
//! squared errors (WSS), and pick the "knee" where the marginal WSS
//! reduction collapses. The knee detector here is the max-distance-to-chord
//! rule (the geometric core of the Kneedle algorithm): normalize the WSS
//! curve, draw the chord from first to last point, and choose the K whose
//! point lies farthest below the chord.

use crate::kmeans::{KMeans, KMeansConfig};
use fairdms_tensor::Tensor;

/// The outcome of an elbow sweep.
#[derive(Clone, Debug)]
pub struct ElbowReport {
    /// Candidate cluster counts, ascending.
    pub ks: Vec<usize>,
    /// WSS at each candidate K.
    pub wss: Vec<f32>,
    /// The selected K.
    pub best_k: usize,
    /// Distance-below-chord score for each candidate (higher = more knee-like).
    pub scores: Vec<f32>,
}

/// Sweeps `k_range` (inclusive), fitting K-means at each K, and returns the
/// elbow report. `seed` controls all fits for reproducibility.
pub fn select_k(data: &Tensor, k_min: usize, k_max: usize, seed: u64) -> ElbowReport {
    assert!(
        k_min >= 1 && k_min <= k_max,
        "invalid k range {k_min}..={k_max}"
    );
    assert!(
        data.shape()[0] >= k_max,
        "need at least {k_max} samples for the sweep"
    );
    let ks: Vec<usize> = (k_min..=k_max).collect();
    let wss: Vec<f32> = ks
        .iter()
        .map(|&k| {
            let mut cfg = KMeansConfig::new(k);
            cfg.seed = seed;
            KMeans::fit(data, &cfg).inertia()
        })
        .collect();
    let (best_k, scores) = knee_of(&ks, &wss);
    ElbowReport {
        ks,
        wss,
        best_k,
        scores,
    }
}

/// Max-distance-to-chord knee detection on a decreasing curve.
///
/// Returns the x value with the highest distance below the chord joining
/// the curve's endpoints, together with the per-point scores. Degenerate
/// curves (flat, or fewer than 3 points) fall back to the smallest x.
pub fn knee_of(xs: &[usize], ys: &[f32]) -> (usize, Vec<f32>) {
    assert_eq!(xs.len(), ys.len(), "knee_of: length mismatch");
    assert!(!xs.is_empty(), "knee_of: empty curve");
    if xs.len() < 3 {
        return (xs[0], vec![0.0; xs.len()]);
    }
    let n = xs.len();
    let (x0, xn) = (xs[0] as f32, xs[n - 1] as f32);
    let (y0, yn) = (ys[0], ys[n - 1]);
    let x_span = (xn - x0).max(1e-12);
    let y_span = (y0 - yn).abs();
    if y_span <= 1e-12 {
        return (xs[0], vec![0.0; n]);
    }

    // Normalize to the unit square; the chord becomes y = 1 − x for a
    // decreasing curve.
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let xn_i = (xs[i] as f32 - x0) / x_span;
        let yn_i = (ys[i] - yn) / y_span;
        let chord_y = 1.0 - xn_i;
        scores.push(chord_y - yn_i); // positive when below the chord
    }
    let mut best = 0usize;
    for i in 1..n {
        if scores[i] > scores[best] {
            best = i;
        }
    }
    (xs[best], scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairdms_tensor::rng::TensorRng;

    /// `k_true` well-separated blobs in 2-D.
    fn blobs(k_true: usize, n_per: usize, seed: u64) -> Tensor {
        let mut rng = TensorRng::seeded(seed);
        let mut data = Vec::with_capacity(k_true * n_per * 2);
        for c in 0..k_true {
            let cx = (c as f32) * 20.0;
            let cy = ((c * 7) % 5) as f32 * 20.0;
            for _ in 0..n_per {
                data.push(cx + rng.next_normal_with(0.0, 0.6));
                data.push(cy + rng.next_normal_with(0.0, 0.6));
            }
        }
        Tensor::from_vec(data, &[k_true * n_per, 2])
    }

    #[test]
    fn knee_on_synthetic_hyperbola() {
        // y = 1/x has its maximal chord distance near the small-x corner.
        let xs: Vec<usize> = (1..=10).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| 1.0 / x as f32).collect();
        let (knee, _) = knee_of(&xs, &ys);
        assert!((2..=3).contains(&knee), "knee at {knee}");
    }

    #[test]
    fn flat_curve_falls_back_to_smallest_k() {
        let xs = vec![1, 2, 3, 4];
        let ys = vec![5.0, 5.0, 5.0, 5.0];
        assert_eq!(knee_of(&xs, &ys).0, 1);
    }

    #[test]
    fn recovers_true_cluster_count() {
        let data = blobs(4, 40, 0);
        let report = select_k(&data, 1, 9, 0);
        assert!(
            (3..=5).contains(&report.best_k),
            "best_k {} (wss {:?})",
            report.best_k,
            report.wss
        );
        // The WSS curve is monotone decreasing (within fit noise).
        for w in report.wss.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "wss not decreasing: {:?}", report.wss);
        }
    }

    #[test]
    fn report_is_internally_consistent() {
        let data = blobs(3, 30, 1);
        let report = select_k(&data, 2, 7, 1);
        assert_eq!(report.ks.len(), report.wss.len());
        assert_eq!(report.ks.len(), report.scores.len());
        assert!(report.ks.contains(&report.best_k));
    }

    #[test]
    #[should_panic(expected = "invalid k range")]
    fn rejects_inverted_range() {
        let data = blobs(2, 10, 2);
        select_k(&data, 5, 2, 0);
    }
}
