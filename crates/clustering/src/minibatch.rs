//! Mini-batch K-means (Sculley 2010): the scalability path the paper's
//! discussion (§IV) leaves as future work.
//!
//! Full Lloyd iterations touch every sample per step — fine for the
//! embedding volumes in the paper's evaluation, but the APS-U data rates
//! it motivates (TB/s) make full passes impractical. Mini-batch K-means
//! updates centers from small random batches with per-center learning
//! rates `1/count`, trading a small WSS penalty for orders-of-magnitude
//! less work per step. The fitted result is an ordinary [`KMeans`] model,
//! so everything downstream (PDF indexing, fuzzy certainty, JSD ranking)
//! is agnostic to which trainer produced the centers.

use crate::kmeans::{wss, KMeans};
use fairdms_tensor::{ops::sq_dist, rng::TensorRng, Tensor};

/// Mini-batch K-means hyperparameters.
#[derive(Clone, Debug)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Samples per mini-batch.
    pub batch_size: usize,
    /// Number of mini-batch steps.
    pub steps: usize,
    /// Seed for initialization and batch sampling.
    pub seed: u64,
}

impl MiniBatchConfig {
    /// Defaults tuned for embedding-scale data: batches of 256 for
    /// `steps = max(100, n/batch)` coverage.
    pub fn new(k: usize) -> Self {
        MiniBatchConfig {
            k,
            batch_size: 256,
            steps: 100,
            seed: 0,
        }
    }
}

/// Fits K-means with the mini-batch update rule, returning a standard
/// [`KMeans`] model.
///
/// Panics when there are fewer samples than clusters.
pub fn fit_minibatch(data: &Tensor, cfg: &MiniBatchConfig) -> KMeans {
    assert_eq!(data.rank(), 2, "mini-batch k-means expects [n, d] data");
    let n = data.shape()[0];
    let d = data.shape()[1];
    assert!(cfg.k > 0, "k must be positive");
    assert!(n >= cfg.k, "cannot fit {} clusters to {n} samples", cfg.k);
    assert!(cfg.batch_size > 0, "batch size must be positive");

    let mut rng = TensorRng::seeded(cfg.seed);
    // k-means++ seeding over a random subsample (sklearn's `init_size`
    // heuristic: 3× the batch size). Uniform-random seeding can plant two
    // centers in one blob — a local minimum the tiny gradient steps never
    // escape.
    let init_size = (3 * cfg.batch_size).clamp(cfg.k, n);
    let order = rng.permutation(n);
    let mut sub = Vec::with_capacity(init_size * d);
    for &i in order.iter().take(init_size) {
        sub.extend_from_slice(data.row(i));
    }
    let sub = Tensor::from_vec(sub, &[init_size, d]);
    let mut centers = crate::kmeans::kmeanspp_init(&sub, cfg.k, &mut rng);

    let raw = data.data();
    let mut counts = vec![0usize; cfg.k];
    let batch = cfg.batch_size.min(n);
    let mut members: Vec<usize> = Vec::with_capacity(batch);
    for _ in 0..cfg.steps {
        members.clear();
        for _ in 0..batch {
            members.push(rng.next_index(n));
        }
        // Assign the batch, then apply per-center gradient steps with the
        // standard 1/count learning rate (centers converge as counts grow).
        for &i in &members {
            let x = &raw[i * d..(i + 1) * d];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..cfg.k {
                let dist = sq_dist(x, centers.row(c));
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            counts[best] += 1;
            let eta = 1.0 / counts[best] as f32;
            for (cv, &xv) in centers.row_mut(best).iter_mut().zip(x) {
                *cv += eta * (xv - *cv);
            }
        }
    }

    KMeans::from_centers(centers, data)
}

impl KMeans {
    /// Wraps externally computed centers into a model, scoring inertia on
    /// `data` (used by the mini-batch trainer and by tests that need a
    /// model with known centers).
    pub fn from_centers(centers: Tensor, data: &Tensor) -> KMeans {
        assert_eq!(centers.rank(), 2, "centers must be [k, d]");
        assert_eq!(
            centers.shape()[1],
            data.shape()[1],
            "center/data dimension mismatch"
        );
        let model = KMeans::with_parts(centers, 0.0, 0);
        let assignments = model.predict(data);
        let inertia = wss(data, model.centers(), &assignments);
        KMeans::with_parts(model.into_centers(), inertia, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansConfig as FullConfig;

    fn blobs(n_per: usize, seed: u64) -> Tensor {
        let mut rng = TensorRng::seeded(seed);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut data = Vec::new();
        for c in &centers {
            for _ in 0..n_per {
                data.push(c[0] + rng.next_normal_with(0.0, 0.5));
                data.push(c[1] + rng.next_normal_with(0.0, 0.5));
            }
        }
        Tensor::from_vec(data, &[n_per * 3, 2])
    }

    #[test]
    fn minibatch_recovers_blob_structure() {
        let data = blobs(200, 0);
        let model = fit_minibatch(
            &data,
            &MiniBatchConfig {
                k: 3,
                batch_size: 64,
                steps: 60,
                seed: 1,
            },
        );
        // Each true blob maps to a single predicted cluster.
        let pred = model.predict(&data);
        for blob in 0..3 {
            let slice = &pred[blob * 200..(blob + 1) * 200];
            let first = slice[0];
            let agree = slice.iter().filter(|&&p| p == first).count();
            assert!(agree > 190, "blob {blob}: only {agree}/200 agree");
        }
    }

    #[test]
    fn minibatch_wss_is_close_to_full_lloyd() {
        let data = blobs(150, 2);
        let full = KMeans::fit(&data, &FullConfig::new(3));
        let mini = fit_minibatch(
            &data,
            &MiniBatchConfig {
                k: 3,
                batch_size: 64,
                steps: 80,
                seed: 3,
            },
        );
        assert!(
            mini.inertia() <= full.inertia() * 1.5,
            "mini-batch WSS {} too far above Lloyd {}",
            mini.inertia(),
            full.inertia()
        );
    }

    #[test]
    fn minibatch_is_deterministic_given_seed() {
        let data = blobs(50, 4);
        let cfg = MiniBatchConfig {
            k: 3,
            batch_size: 32,
            steps: 30,
            seed: 5,
        };
        let a = fit_minibatch(&data, &cfg);
        let b = fit_minibatch(&data, &cfg);
        assert_eq!(a.predict(&data), b.predict(&data));
        assert_eq!(a.inertia(), b.inertia());
    }

    #[test]
    fn from_centers_scores_inertia() {
        let data = Tensor::from_vec(vec![0.0, 0.0, 2.0, 0.0, 10.0, 0.0], &[3, 2]);
        let centers = Tensor::from_vec(vec![1.0, 0.0, 10.0, 0.0], &[2, 2]);
        let model = KMeans::from_centers(centers, &data);
        // Points at 0 and 2 are distance 1 from center (1,0): WSS = 2.
        assert!((model.inertia() - 2.0).abs() < 1e-5);
        assert_eq!(model.predict(&data), vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn minibatch_rejects_k_gt_n() {
        let data = Tensor::zeros(&[2, 2]);
        fit_minibatch(&data, &MiniBatchConfig::new(3));
    }

    #[test]
    fn tiny_batch_still_converges_roughly() {
        let data = blobs(100, 6);
        let model = fit_minibatch(
            &data,
            &MiniBatchConfig {
                k: 3,
                batch_size: 8,
                steps: 400,
                seed: 7,
            },
        );
        let full = KMeans::fit(&data, &FullConfig::new(3));
        assert!(model.inertia() <= full.inertia() * 3.0);
    }
}
