//! # fairdms-clustering
//!
//! The clustering substrate of fairDS (paper §II-A): K-means with
//! k-means++ seeding and rayon-parallel assignment, automatic selection of
//! the cluster count via the elbow method (the YellowBrick procedure the
//! paper uses), and fuzzy c-means memberships for the certainty metric that
//! drives the paper's retraining trigger (Fig 16).
//!
//! The pipeline: fairDS embeds every sample into a compact feature vector,
//! clusters the embedding space with [`KMeans`], summarizes datasets as
//! cluster-occupancy PDFs, and uses [`fuzzy::certainty`] to decide when the
//! embedding+clustering stack has gone stale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod elbow;
pub mod fuzzy;
pub mod kmeans;
pub mod metrics;
pub mod minibatch;
pub mod partition;

pub use elbow::{select_k, ElbowReport};
pub use fuzzy::{certainty, certainty_with_fuzzifier, memberships};
pub use kmeans::{KMeans, KMeansConfig};
pub use metrics::{davies_bouldin, silhouette};
pub use minibatch::{fit_minibatch, MiniBatchConfig};
pub use partition::{partition_balls, Ball, BallPartitionConfig};

/// Normalizes a histogram of cluster counts into a probability distribution.
///
/// Empty inputs produce the uniform distribution (every downstream consumer
/// — JSD, PDF-matched sampling — requires a valid distribution).
pub fn counts_to_pdf(counts: &[usize]) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        let k = counts.len().max(1);
        return vec![1.0 / k as f64; k];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Builds the cluster-occupancy PDF of a dataset given per-sample
/// assignments — the representation fairDS uses to index both datasets and
/// the models trained on them.
pub fn assignments_to_pdf(assignments: &[usize], k: usize) -> Vec<f64> {
    let mut counts = vec![0usize; k];
    for &a in assignments {
        assert!(a < k, "assignment {a} out of range for k={k}");
        counts[a] += 1;
    }
    counts_to_pdf(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_normalize_to_unit_mass() {
        let pdf = counts_to_pdf(&[2, 6, 2]);
        assert_eq!(pdf, vec![0.2, 0.6, 0.2]);
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_fall_back_to_uniform() {
        let pdf = counts_to_pdf(&[0, 0, 0, 0]);
        assert_eq!(pdf, vec![0.25; 4]);
    }

    #[test]
    fn assignments_build_correct_histogram() {
        let pdf = assignments_to_pdf(&[0, 1, 1, 2, 1], 4);
        assert_eq!(pdf, vec![0.2, 0.6, 0.2, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignments_out_of_range_panic() {
        assignments_to_pdf(&[3], 2);
    }
}
