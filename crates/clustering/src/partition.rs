//! Ball sub-partitioner: the second level of the read index's IVF.
//!
//! The K-means system plane coarsely quantizes the embedding space; within
//! one cluster, reads still scanned every member linearly. This module
//! recursively splits a cluster's member rows (mini-batch K-means, cheap
//! and deterministic) into **balls** — contiguous groups with a precomputed
//! center and a conservative radius — so a query can prune whole balls via
//! the triangle inequality: every member `x` of a ball satisfies
//! `d(q, x) ≥ d(q, c) − r`, so a ball whose lower bound exceeds the best
//! distance found so far cannot contain the nearest neighbour.
//!
//! The partition is **exact-search infrastructure, not approximation**: it
//! is a total cover (every input row lands in exactly one ball) and the
//! radius is inflated past f32 rounding, so pruning with it never discards
//! the true nearest neighbour (see `fairdms-core`'s read index, DESIGN.md
//! §12, for the end-to-end exactness argument).

use crate::minibatch::{fit_minibatch, MiniBatchConfig};
use fairdms_tensor::{ops::sq_dist, Tensor};

/// Relative radius inflation: guards the triangle-inequality bound against
/// f32 rounding in the radius computation itself.
const RADIUS_SLACK_REL: f32 = 1e-3;

/// Absolute radius inflation floor (rows coincident with the center).
const RADIUS_SLACK_ABS: f32 = 1e-6;

/// Ball-partition hyperparameters.
#[derive(Clone, Debug)]
pub struct BallPartitionConfig {
    /// Target rows per ball; groups at most twice this size are emitted
    /// as leaves.
    pub target: usize,
    /// Recursion depth cap (oversized leaves are emitted rather than
    /// split forever on pathological data, e.g. all-identical rows).
    pub max_depth: usize,
    /// Seed for the mini-batch fits (derived per recursive split, so the
    /// whole partition is a pure function of `(data, config)`).
    pub seed: u64,
}

impl Default for BallPartitionConfig {
    fn default() -> Self {
        BallPartitionConfig {
            target: 64,
            max_depth: 3,
            seed: 0,
        }
    }
}

/// One ball of the partition: member rows (indices into the input matrix,
/// ascending), the ball center, and a conservative Euclidean radius.
#[derive(Clone, Debug)]
pub struct Ball {
    /// Row indices into the partitioned matrix, ascending.
    pub members: Vec<usize>,
    /// Ball center (`d` floats — a mini-batch K-means centroid, or the
    /// mean for leaf-sized groups).
    pub center: Vec<f32>,
    /// Inflated max member distance: `d(row, center) ≤ radius` holds for
    /// every member even under f32 rounding.
    pub radius: f32,
}

/// Partitions the rows of a flattened `[n, d]` matrix into balls of
/// roughly `cfg.target` rows. Returns an exact cover: every row index in
/// `0..n` appears in exactly one ball, members ascending within each.
///
/// Deterministic in `(data, cfg)`; `n = 0` yields no balls, tiny inputs
/// yield a single ball.
pub fn partition_balls(data: &[f32], d: usize, cfg: &BallPartitionConfig) -> Vec<Ball> {
    assert!(d > 0, "partition_balls: zero-width rows");
    assert_eq!(data.len() % d, 0, "partition_balls: ragged matrix");
    assert!(cfg.target > 0, "partition_balls: zero ball target");
    let n = data.len() / d;
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let rows: Vec<usize> = (0..n).collect();
    split(data, d, rows, 0, cfg.seed, cfg, &mut out);
    out
}

/// Recursive splitter: emits `rows` as one ball when small enough (or the
/// depth cap / a degenerate fit stops progress), otherwise sub-clusters
/// them and recurses per group.
fn split(
    data: &[f32],
    d: usize,
    rows: Vec<usize>,
    depth: usize,
    seed: u64,
    cfg: &BallPartitionConfig,
    out: &mut Vec<Ball>,
) {
    let n = rows.len();
    if n <= 2 * cfg.target || depth >= cfg.max_depth {
        out.push(make_ball(data, d, rows));
        return;
    }
    let k = (n / cfg.target).clamp(2, 16);
    let mut gathered = Vec::with_capacity(n * d);
    for &r in &rows {
        gathered.extend_from_slice(&data[r * d..(r + 1) * d]);
    }
    let sub = Tensor::from_vec(gathered, &[n, d]);
    let km = fit_minibatch(
        &sub,
        &MiniBatchConfig {
            k,
            batch_size: 256.min(n),
            steps: 30,
            seed,
        },
    );
    let assign = km.predict(&sub);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (local, &row) in rows.iter().enumerate() {
        groups[assign[local]].push(row);
    }
    // No progress (all rows in one group — identical rows, collapsed
    // centers): emit as a leaf rather than recurse forever.
    if groups.iter().filter(|g| !g.is_empty()).count() <= 1 {
        out.push(make_ball(data, d, rows));
        return;
    }
    for (g, group) in groups.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let child_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(g as u64 + 1);
        split(data, d, group, depth + 1, child_seed, cfg, out);
    }
}

/// Builds one ball over `rows`: center = member mean, radius = inflated
/// max exact member distance.
fn make_ball(data: &[f32], d: usize, rows: Vec<usize>) -> Ball {
    debug_assert!(!rows.is_empty());
    let mut center = vec![0.0f64; d];
    for &r in &rows {
        for (c, &v) in center.iter_mut().zip(&data[r * d..(r + 1) * d]) {
            *c += v as f64;
        }
    }
    let inv = 1.0 / rows.len() as f64;
    let center: Vec<f32> = center.into_iter().map(|c| (c * inv) as f32).collect();
    let mut max_d = 0.0f32;
    for &r in &rows {
        let dist = sq_dist(&data[r * d..(r + 1) * d], &center).sqrt();
        max_d = max_d.max(dist);
    }
    Ball {
        members: rows,
        center,
        radius: max_d * (1.0 + RADIUS_SLACK_REL) + RADIUS_SLACK_ABS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairdms_tensor::rng::TensorRng;

    fn clustered_rows(n: usize, d: usize, seed: u64) -> Vec<f32> {
        let mut rng = TensorRng::seeded(seed);
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let base = (i % 4) as f32 * 10.0;
            for _ in 0..d {
                data.push(base + rng.next_normal_with(0.0, 0.3));
            }
        }
        data
    }

    #[test]
    fn partition_is_an_exact_cover() {
        let d = 6;
        let data = clustered_rows(500, d, 1);
        let balls = partition_balls(&data, d, &BallPartitionConfig::default());
        assert!(balls.len() > 1, "500 rows should split");
        let mut seen = vec![false; 500];
        for b in &balls {
            assert!(!b.members.is_empty());
            assert!(b.members.windows(2).all(|w| w[0] < w[1]), "not ascending");
            for &m in &b.members {
                assert!(!seen[m], "row {m} in two balls");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "rows missing from the cover");
    }

    #[test]
    fn radius_bounds_every_member() {
        let d = 5;
        let data = clustered_rows(300, d, 2);
        for b in partition_balls(&data, d, &BallPartitionConfig::default()) {
            for &m in &b.members {
                let dist = sq_dist(&data[m * d..(m + 1) * d], &b.center).sqrt();
                assert!(
                    dist <= b.radius,
                    "member {m}: distance {dist} > radius {}",
                    b.radius
                );
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let d = 4;
        let data = clustered_rows(400, d, 3);
        let cfg = BallPartitionConfig::default();
        let a = partition_balls(&data, d, &cfg);
        let b = partition_balls(&data, d, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.center, y.center);
            assert_eq!(x.radius, y.radius);
        }
    }

    #[test]
    fn degenerate_inputs_yield_sane_partitions() {
        // Empty.
        assert!(partition_balls(&[], 3, &BallPartitionConfig::default()).is_empty());
        // Single row: one ball, tiny positive radius.
        let one = partition_balls(&[1.0, 2.0], 2, &BallPartitionConfig::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].members, vec![0]);
        assert!(one[0].radius > 0.0);
        // All-identical rows: must terminate (depth cap / no-progress
        // guard) and still cover everything.
        let same = vec![0.5f32; 600 * 2];
        let balls = partition_balls(
            &same,
            2,
            &BallPartitionConfig {
                target: 8,
                ..BallPartitionConfig::default()
            },
        );
        let total: usize = balls.iter().map(|b| b.members.len()).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn small_input_is_one_ball() {
        let d = 3;
        let data = clustered_rows(20, d, 4);
        let balls = partition_balls(&data, d, &BallPartitionConfig::default());
        assert_eq!(balls.len(), 1);
        assert_eq!(balls[0].members.len(), 20);
    }
}
