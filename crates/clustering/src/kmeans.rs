//! K-means clustering with k-means++ initialization and Lloyd iterations.
//!
//! Assignment — the hot phase, linear in `n·k·d` — is parallelized over
//! samples with rayon. The paper picked k-means for fairDS "due to its
//! scalability and fast convergence" (§II-A); this implementation keeps
//! those properties.

use fairdms_tensor::gemm::Threading;
use fairdms_tensor::{
    ops::{row_sq_norms, sq_dist, sq_dist_into},
    rng::TensorRng,
    Tensor,
};
use rayon::prelude::*;
use std::cell::Cell;

/// Relative error margin granted to a GEMM-normed squared distance
/// (`‖q‖² + ‖x‖² − 2·q·x`) against the exact [`sq_dist`] loop, scaled by
/// `‖q‖² + ‖x‖²` — the magnitude the expansion's cancellation error is
/// proportional to. f32 GEMM error is O(d·ε) ≈ 1e-4 at the dimensions in
/// this workspace; 1e-3 is a deliberately loose bound, because a too-tight
/// margin silently breaks exactness while a loose one only costs a few
/// extra exact re-evaluations.
pub const NORMED_EPS_REL: f32 = 1e-3;

/// Absolute floor of the normed-distance error margin (covers rows at the
/// origin, where the relative term vanishes).
pub const NORMED_EPS_ABS: f32 = 1e-12;

/// The error margin of a GEMM-normed squared distance between rows with
/// squared norms `qn` and `xn`: exact [`sq_dist`] is guaranteed inside
/// `normed ± margin`. The pruning and candidate-selection contracts of the
/// batched assigner and the core read index both rest on this bound.
#[inline]
pub fn normed_margin(qn: f32, xn: f32) -> f32 {
    NORMED_EPS_REL * (qn + xn) + NORMED_EPS_ABS
}

/// K-means hyperparameters.
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on the maximum center displacement.
    pub tol: f32,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// A reasonable default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 100,
            tol: 1e-4,
            seed: 0,
        }
    }
}

/// A fitted K-means model: `k` centers in a `d`-dimensional feature space.
#[derive(Clone, Debug)]
pub struct KMeans {
    centers: Tensor, // [k, d]
    inertia: f32,
    iterations: usize,
}

impl KMeans {
    /// Fits K-means to `data` (`[n, d]`) with k-means++ seeding.
    ///
    /// Panics when `n < k` — fewer samples than clusters is a caller bug.
    pub fn fit(data: &Tensor, cfg: &KMeansConfig) -> Self {
        assert_eq!(data.rank(), 2, "KMeans expects [n, d] data");
        let n = data.shape()[0];
        let d = data.shape()[1];
        assert!(cfg.k > 0, "k must be positive");
        assert!(n >= cfg.k, "cannot fit {} clusters to {n} samples", cfg.k);

        let mut rng = TensorRng::seeded(cfg.seed);
        let mut centers = kmeanspp_init(data, cfg.k, &mut rng);
        let mut assignments = vec![0usize; n];

        let mut iterations = 0;
        for iter in 0..cfg.max_iters {
            iterations = iter + 1;
            assign_parallel(data, &centers, &mut assignments);

            // Recompute centers; empty clusters are reseeded to the point
            // farthest from its current center (standard k-means repair).
            let mut sums = vec![0.0f64; cfg.k * d];
            let mut counts = vec![0usize; cfg.k];
            for (i, &a) in assignments.iter().enumerate() {
                counts[a] += 1;
                let row = data.row(i);
                for (s, &v) in sums[a * d..(a + 1) * d].iter_mut().zip(row) {
                    *s += v as f64;
                }
            }
            let mut new_centers = centers.clone();
            for c in 0..cfg.k {
                if counts[c] == 0 {
                    let far = farthest_point(data, &centers, &assignments);
                    new_centers.row_mut(c).copy_from_slice(data.row(far));
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in new_centers
                    .row_mut(c)
                    .iter_mut()
                    .zip(&sums[c * d..(c + 1) * d])
                {
                    *dst = (s * inv) as f32;
                }
            }

            // Max center displacement as the convergence criterion.
            let mut max_shift = 0.0f32;
            for c in 0..cfg.k {
                let shift = sq_dist(centers.row(c), new_centers.row(c)).sqrt();
                max_shift = max_shift.max(shift);
            }
            centers = new_centers;
            if max_shift <= cfg.tol {
                break;
            }
        }

        assign_parallel(data, &centers, &mut assignments);
        let inertia = wss(data, &centers, &assignments);
        KMeans {
            centers,
            inertia,
            iterations,
        }
    }

    /// Assembles a model from raw parts (crate-internal: used by the
    /// mini-batch trainer).
    pub(crate) fn with_parts(centers: Tensor, inertia: f32, iterations: usize) -> KMeans {
        KMeans {
            centers,
            inertia,
            iterations,
        }
    }

    /// Consumes the model, returning its centers (crate-internal).
    pub(crate) fn into_centers(self) -> Tensor {
        self.centers
    }

    /// Cluster centers as a `[k, d]` tensor.
    pub fn centers(&self) -> &Tensor {
        &self.centers
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.shape()[0]
    }

    /// Within-cluster sum of squared errors on the training data.
    pub fn inertia(&self) -> f32 {
        self.inertia
    }

    /// Lloyd iterations executed during fitting.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Assigns each row of `data` to its nearest center.
    pub fn predict(&self, data: &Tensor) -> Vec<usize> {
        assert_eq!(
            data.shape()[1],
            self.centers.shape()[1],
            "dimension mismatch between data and centers"
        );
        let mut assignments = vec![0usize; data.shape()[0]];
        assign_parallel(data, &self.centers, &mut assignments);
        assignments
    }

    /// Assigns a single sample, returning `(cluster, squared distance)`.
    pub fn predict_one(&self, sample: &[f32]) -> (usize, f32) {
        nearest_center(sample, &self.centers)
    }

    /// Within-cluster sum of squared errors of `data` under this model.
    pub fn score(&self, data: &Tensor) -> f32 {
        let assignments = self.predict(data);
        wss(data, &self.centers, &assignments)
    }
}

/// k-means++ seeding: iteratively picks new centers with probability
/// proportional to squared distance from the nearest existing center.
pub(crate) fn kmeanspp_init(data: &Tensor, k: usize, rng: &mut TensorRng) -> Tensor {
    let n = data.shape()[0];
    let d = data.shape()[1];
    let mut centers = Tensor::zeros(&[k, d]);
    let first = rng.next_index(n);
    centers.row_mut(0).copy_from_slice(data.row(first));

    let mut min_dist: Vec<f32> = (0..n)
        .map(|i| sq_dist(data.row(i), centers.row(0)))
        .collect();

    for c in 1..k {
        let idx = rng.next_weighted(&min_dist);
        centers.row_mut(c).copy_from_slice(data.row(idx));
        for (i, md) in min_dist.iter_mut().enumerate() {
            let dist = sq_dist(data.row(i), centers.row(c));
            if dist < *md {
                *md = dist;
            }
        }
    }
    centers
}

/// Nearest center and squared distance for one sample.
fn nearest_center(sample: &[f32], centers: &Tensor) -> (usize, f32) {
    let k = centers.shape()[0];
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let d = sq_dist(sample, centers.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Output elements (`n·k`) below which assignment stays on the scalar
/// per-row scan: the GEMM's norm/pack setup costs more than it saves on
/// tiny batches, and the refine step makes both paths agree exactly, so
/// the switch is invisible to callers.
const BATCH_ASSIGN_MIN: usize = 2048;

thread_local! {
    /// Normed-distance scratch (`[n, k]`), recycled across assignment
    /// calls so the Lloyd loop and steady-state `predict` allocate
    /// nothing per call beyond the assignments themselves.
    static ASSIGN_DIST: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Parallel assignment of every sample to its nearest center.
///
/// Large batches route through **one** fused-epilogue GEMM
/// (`‖x‖² + ‖c‖² − 2·X·Cᵀ`, [`sq_dist_into`]) instead of `n·k` scalar
/// [`sq_dist`] scans. Because the normed distances are only
/// relative-tolerance accurate, each row is *refined to exact*: every
/// center whose normed distance could possibly be the true minimum (within
/// [`normed_margin`]) is re-evaluated with the exact `sq_dist` loop, and
/// the winner is the lowest-index center with the smallest exact distance
/// — precisely the answer the scalar [`nearest_center`] scan produces.
/// Assignments are therefore identical on both paths, for fitting and
/// prediction alike; only the cost changes.
fn assign_parallel(data: &Tensor, centers: &Tensor, out: &mut [usize]) {
    let d = data.shape()[1];
    let n = data.shape()[0];
    let k = centers.shape()[0];
    let raw = data.data();
    if n * k < BATCH_ASSIGN_MIN || d == 0 {
        out.par_iter_mut().enumerate().for_each(|(i, a)| {
            let row = &raw[i * d..(i + 1) * d];
            *a = nearest_center(row, centers).0;
        });
        return;
    }
    let dn = row_sq_norms(raw, d);
    let cn = row_sq_norms(centers.data(), d);
    let mut dist = ASSIGN_DIST.with(Cell::take);
    dist.clear();
    dist.resize(n * k, 0.0);
    sq_dist_into(
        n,
        d,
        k,
        raw,
        centers.data(),
        &dn,
        &cn,
        &mut dist,
        Threading::Auto,
    );
    {
        let dist = &dist;
        out.par_iter_mut().enumerate().for_each(|(i, a)| {
            let row = &raw[i * d..(i + 1) * d];
            *a = refine_nearest(&dist[i * k..(i + 1) * k], dn[i], &cn, row, centers);
        });
    }
    ASSIGN_DIST.with(|c| c.set(dist));
}

/// Exact argmin recovery from one row of normed distances: centers within
/// the error margin of the best normed value are re-scored with the exact
/// [`sq_dist`] loop; ties break to the lowest center index (the scalar
/// scan's strict-`<` rule).
fn refine_nearest(drow: &[f32], qn: f32, cn: &[f32], row: &[f32], centers: &Tensor) -> usize {
    let mut cutoff = f32::INFINITY;
    for (j, &dj) in drow.iter().enumerate() {
        cutoff = cutoff.min(dj + normed_margin(qn, cn[j]));
    }
    let is_candidate = |j: usize| drow[j] - normed_margin(qn, cn[j]) <= cutoff;
    let mut candidates = (0..drow.len()).filter(|&j| is_candidate(j));
    let first = candidates
        .next()
        .expect("normed argmin is always a candidate of itself");
    // A lone candidate needs no exact pass: no other center can beat it
    // even under worst-case normed error.
    let Some(second) = candidates.next() else {
        return first;
    };
    let mut best = first;
    let mut best_d = sq_dist(row, centers.row(first));
    for j in std::iter::once(second).chain(candidates) {
        let e = sq_dist(row, centers.row(j));
        if e < best_d {
            best_d = e;
            best = j;
        }
    }
    best
}

/// Within-cluster sum of squared errors.
pub fn wss(data: &Tensor, centers: &Tensor, assignments: &[usize]) -> f32 {
    let d = data.shape()[1];
    let raw = data.data();
    assignments
        .par_iter()
        .enumerate()
        .map(|(i, &a)| sq_dist(&raw[i * d..(i + 1) * d], centers.row(a)))
        .sum()
}

/// The point with maximum distance to its assigned center (used to reseed
/// empty clusters).
fn farthest_point(data: &Tensor, centers: &Tensor, assignments: &[usize]) -> usize {
    let d = data.shape()[1];
    let raw = data.data();
    let mut best = 0usize;
    let mut best_d = -1.0f32;
    for (i, &a) in assignments.iter().enumerate() {
        let dist = sq_dist(&raw[i * d..(i + 1) * d], centers.row(a));
        if dist > best_d {
            best_d = dist;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs.
    pub(crate) fn blobs(n_per: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = TensorRng::seeded(seed);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut data = Vec::with_capacity(n_per * 3 * 2);
        let mut labels = Vec::with_capacity(n_per * 3);
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                data.push(c[0] + rng.next_normal_with(0.0, 0.5));
                data.push(c[1] + rng.next_normal_with(0.0, 0.5));
                labels.push(ci);
            }
        }
        (Tensor::from_vec(data, &[n_per * 3, 2]), labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (data, labels) = blobs(50, 0);
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        let pred = model.predict(&data);
        // Every true cluster maps to exactly one predicted cluster.
        for true_c in 0..3 {
            let preds: Vec<usize> = labels
                .iter()
                .zip(&pred)
                .filter(|(l, _)| **l == true_c)
                .map(|(_, p)| *p)
                .collect();
            assert!(
                preds.windows(2).all(|w| w[0] == w[1]),
                "cluster {true_c} split across predictions"
            );
        }
        assert!(model.inertia() < 150.0, "inertia {}", model.inertia());
    }

    #[test]
    fn every_point_is_assigned_to_nearest_center() {
        let (data, _) = blobs(30, 1);
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        let pred = model.predict(&data);
        for (i, &a) in pred.iter().enumerate() {
            let (nearest, _) = model.predict_one(data.row(i));
            assert_eq!(a, nearest);
        }
    }

    #[test]
    fn batched_assignment_matches_scalar_scan_exactly() {
        // 750 points × 3 centers crosses BATCH_ASSIGN_MIN, so predict runs
        // the GEMM + refine path; every assignment must still equal the
        // scalar per-row scan, including on duplicated (tie-heavy) rows.
        let (data, _) = blobs(250, 8);
        let n = data.shape()[0];
        assert!(
            n * 3 >= BATCH_ASSIGN_MIN,
            "test must exercise the GEMM path"
        );
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        let pred = model.predict(&data);
        for (i, &a) in pred.iter().enumerate() {
            assert_eq!(a, nearest_center(data.row(i), model.centers()).0, "row {i}");
        }
        // Duplicate the matrix: identical rows must get identical
        // assignments regardless of batch position.
        let mut twice = data.data().to_vec();
        twice.extend_from_slice(data.data());
        let twice = Tensor::from_vec(twice, &[2 * n, 2]);
        let pred2 = model.predict(&twice);
        assert_eq!(&pred2[..n], &pred[..]);
        assert_eq!(&pred2[n..], &pred[..]);
    }

    #[test]
    fn more_clusters_never_increase_wss() {
        let (data, _) = blobs(40, 2);
        let mut prev = f32::INFINITY;
        for k in 1..=6 {
            let mut cfg = KMeansConfig::new(k);
            cfg.seed = 3;
            let model = KMeans::fit(&data, &cfg);
            assert!(
                model.inertia() <= prev * 1.01,
                "k={k}: inertia {} > previous {prev}",
                model.inertia()
            );
            prev = model.inertia();
        }
    }

    #[test]
    fn predict_is_deterministic_given_seed() {
        let (data, _) = blobs(25, 4);
        let a = KMeans::fit(&data, &KMeansConfig::new(3));
        let b = KMeans::fit(&data, &KMeansConfig::new(3));
        assert_eq!(a.predict(&data), b.predict(&data));
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Tensor::from_vec(vec![0.0, 0.0, 5.0, 5.0, 9.0, 0.0], &[3, 2]);
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        assert!(model.inertia() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn rejects_more_clusters_than_samples() {
        let data = Tensor::zeros(&[2, 2]);
        KMeans::fit(&data, &KMeansConfig::new(3));
    }

    #[test]
    fn score_matches_inertia_on_training_data() {
        let (data, _) = blobs(20, 5);
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        assert!((model.score(&data) - model.inertia()).abs() < 1e-2);
    }
}
