//! Fuzzy (soft) cluster memberships and the certainty metric of Fig 16.
//!
//! The paper quantifies the health of the embedding+clustering stack as the
//! percentage of a dataset "assigned to their respective cluster with at
//! least 50 % confidence", computed with fuzzy k-means memberships (§III-I).
//! Given fitted hard centers, the standard fuzzy c-means membership of
//! sample `x` in cluster `i` is
//!
//! ```text
//! u_i(x) = 1 / Σ_j (‖x−c_i‖ / ‖x−c_j‖)^(2/(m−1))
//! ```
//!
//! with fuzzifier `m > 1`. Memberships are in `[0, 1]` and sum to 1.

use crate::kmeans::KMeans;
use fairdms_tensor::{ops::sq_dist, Tensor};
use rayon::prelude::*;

/// The conventional fuzzifier.
pub const DEFAULT_FUZZIFIER: f32 = 2.0;

/// Fuzzy membership vector of a single sample against a set of centers.
///
/// A sample exactly on a center gets membership 1 for it (and 0 elsewhere).
pub fn membership_of(sample: &[f32], centers: &Tensor, fuzzifier: f32) -> Vec<f32> {
    assert!(fuzzifier > 1.0, "fuzzifier must exceed 1");
    let k = centers.shape()[0];
    let exponent = 2.0 / (fuzzifier - 1.0);
    let dists: Vec<f32> = (0..k)
        .map(|c| sq_dist(sample, centers.row(c)).sqrt())
        .collect();

    // Exact-hit handling: distribute all mass over coincident centers.
    let hits: Vec<usize> = (0..k).filter(|&c| dists[c] <= 1e-12).collect();
    if !hits.is_empty() {
        let mut u = vec![0.0f32; k];
        let share = 1.0 / hits.len() as f32;
        for h in hits {
            u[h] = share;
        }
        return u;
    }

    let mut u = vec![0.0f32; k];
    for i in 0..k {
        let mut denom = 0.0f32;
        for j in 0..k {
            denom += (dists[i] / dists[j]).powf(exponent);
        }
        u[i] = 1.0 / denom;
    }
    u
}

/// Fuzzy membership matrix (`[n, k]`, row-stochastic) of a dataset against
/// a fitted K-means model.
pub fn memberships(data: &Tensor, model: &KMeans, fuzzifier: f32) -> Tensor {
    assert_eq!(data.rank(), 2, "memberships expects [n, d] data");
    let n = data.shape()[0];
    let d = data.shape()[1];
    let k = model.k();
    let raw = data.data();
    let centers = model.centers();
    let mut out = vec![0.0f32; n * k];
    out.par_chunks_mut(k).enumerate().for_each(|(i, row)| {
        let u = membership_of(&raw[i * d..(i + 1) * d], centers, fuzzifier);
        row.copy_from_slice(&u);
    });
    Tensor::from_vec(out, &[n, k])
}

/// The paper's certainty metric: the fraction of samples whose *maximum*
/// fuzzy membership is at least `confidence` (Fig 16 uses 0.5), with the
/// conventional fuzzifier m = 2.
///
/// Returns a value in `[0, 1]`.
pub fn certainty(data: &Tensor, model: &KMeans, confidence: f32) -> f64 {
    certainty_with_fuzzifier(data, model, confidence, DEFAULT_FUZZIFIER)
}

/// [`certainty`] with an explicit fuzzifier.
///
/// The fuzzifier sets the metric's operating point: at m = 2 with large K
/// even well-clustered data rarely reaches 0.5 max-membership, while
/// m → 1 approaches hard assignment (certainty → 1). The paper does not
/// report its value; deployments calibrate m so in-distribution data
/// scores near the paper's ~97 % baseline.
pub fn certainty_with_fuzzifier(
    data: &Tensor,
    model: &KMeans,
    confidence: f32,
    fuzzifier: f32,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&confidence),
        "confidence must be in [0,1]"
    );
    let n = data.shape()[0];
    if n == 0 {
        return 1.0;
    }
    let u = memberships(data, model, fuzzifier);
    let k = model.k();
    let confident = u
        .data()
        .chunks(k)
        .filter(|row| row.iter().cloned().fold(f32::NEG_INFINITY, f32::max) >= confidence)
        .count();
    confident as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansConfig;
    use fairdms_tensor::rng::TensorRng;

    /// Three blobs: with k=2 the max of a 2-way membership is always ≥ 0.5,
    /// so certainty tests need at least three clusters to be informative.
    fn blobs(spread: f32, seed: u64) -> Tensor {
        let mut rng = TensorRng::seeded(seed);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [5.0, 9.0]];
        let mut data = Vec::new();
        for c in &centers {
            for _ in 0..40 {
                data.push(c[0] + rng.next_normal_with(0.0, spread));
                data.push(c[1] + rng.next_normal_with(0.0, spread));
            }
        }
        Tensor::from_vec(data, &[120, 2])
    }

    #[test]
    fn memberships_are_row_stochastic() {
        let data = blobs(1.0, 0);
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        let u = memberships(&data, &model, DEFAULT_FUZZIFIER);
        for i in 0..120 {
            let row = u.row(i);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn sample_on_center_has_full_membership() {
        let data = blobs(0.5, 1);
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        let c0: Vec<f32> = model.centers().row(0).to_vec();
        let u = membership_of(&c0, model.centers(), DEFAULT_FUZZIFIER);
        assert!((u[0] - 1.0).abs() < 1e-6);
        assert!(u[1].abs() < 1e-6);
        assert!(u[2].abs() < 1e-6);
    }

    #[test]
    fn tight_clusters_are_more_certain_than_overlapping_ones() {
        let tight = blobs(0.3, 2);
        let loose = blobs(4.0, 2);
        let m_tight = KMeans::fit(&tight, &KMeansConfig::new(3));
        let m_loose = KMeans::fit(&loose, &KMeansConfig::new(3));
        let c_tight = certainty(&tight, &m_tight, 0.5);
        let c_loose = certainty(&loose, &m_loose, 0.5);
        assert!(c_tight > c_loose, "{c_tight} !> {c_loose}");
        assert!(
            c_tight > 0.95,
            "tight clusters should be certain: {c_tight}"
        );
    }

    #[test]
    fn drifted_data_loses_certainty_under_a_stale_model() {
        // Fit on data near the blobs, evaluate on data midway between the
        // centers: a stale model should be visibly less certain (Fig 16).
        let train = blobs(0.3, 3);
        let model = KMeans::fit(&train, &KMeansConfig::new(3));
        let mut rng = TensorRng::seeded(4);
        let mut drifted = Vec::new();
        for _ in 0..60 {
            // Near the centroid of the three blob centers.
            drifted.push(5.0 + rng.next_normal_with(0.0, 0.4));
            drifted.push(3.0 + rng.next_normal_with(0.0, 0.4));
        }
        let drifted = Tensor::from_vec(drifted, &[60, 2]);
        let c_train = certainty(&train, &model, 0.5);
        let c_drift = certainty(&drifted, &model, 0.5);
        assert!(c_drift < c_train, "{c_drift} !< {c_train}");
    }

    #[test]
    fn midpoint_between_two_centers_is_maximally_uncertain() {
        let centers = Tensor::from_vec(vec![0.0, 0.0, 10.0, 0.0], &[2, 2]);
        let u = membership_of(&[5.0, 0.0], &centers, DEFAULT_FUZZIFIER);
        assert!((u[0] - 0.5).abs() < 1e-5);
        assert!((u[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn empty_dataset_is_fully_certain() {
        let data = blobs(0.5, 5);
        let model = KMeans::fit(&data, &KMeansConfig::new(3));
        let empty = Tensor::zeros(&[0, 2]);
        assert_eq!(certainty(&empty, &model, 0.5), 1.0);
    }
}
