//! Property tests for the clustering invariants listed in DESIGN.md §5.

use fairdms_clustering::{assignments_to_pdf, fuzzy, kmeans::wss, KMeans, KMeansConfig};
use fairdms_tensor::{ops::sq_dist, rng::TensorRng, Tensor};
use proptest::prelude::*;

fn random_data(n: usize, d: usize, seed: u64) -> Tensor {
    TensorRng::seeded(seed).uniform(&[n, d], -10.0, 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_point_assigned_to_nearest_center(
        n in 8usize..60,
        d in 1usize..6,
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        prop_assume!(n >= k);
        let data = random_data(n, d, seed);
        let model = KMeans::fit(&data, &KMeansConfig::new(k));
        let assignments = model.predict(&data);
        for (i, &a) in assignments.iter().enumerate() {
            let da = sq_dist(data.row(i), model.centers().row(a));
            for c in 0..k {
                let dc = sq_dist(data.row(i), model.centers().row(c));
                prop_assert!(da <= dc + 1e-4, "point {i}: {da} > {dc} (cluster {c})");
            }
        }
    }

    #[test]
    fn inertia_equals_wss_of_final_assignment(
        n in 8usize..60,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        prop_assume!(n >= k);
        let data = random_data(n, 3, seed);
        let model = KMeans::fit(&data, &KMeansConfig::new(k));
        let assignments = model.predict(&data);
        let w = wss(&data, model.centers(), &assignments);
        prop_assert!((w - model.inertia()).abs() <= 1e-2 * (1.0 + w));
    }

    #[test]
    fn fuzzy_memberships_form_distributions(
        n in 8usize..40,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        prop_assume!(n >= k);
        let data = random_data(n, 2, seed);
        let model = KMeans::fit(&data, &KMeansConfig::new(k));
        let u = fuzzy::memberships(&data, &model, 2.0);
        for i in 0..n {
            let row = u.row(i);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3, "row {i} sums to {sum}");
            prop_assert!(row.iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn certainty_is_a_fraction(
        n in 8usize..40,
        k in 2usize..5,
        confidence in 0.0f32..1.0,
        seed in 0u64..500,
    ) {
        prop_assume!(n >= k);
        let data = random_data(n, 2, seed);
        let model = KMeans::fit(&data, &KMeansConfig::new(k));
        let c = fuzzy::certainty(&data, &model, confidence);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn pdf_sums_to_one_and_matches_counts(
        assignments in proptest::collection::vec(0usize..5, 1..100),
    ) {
        let pdf = assignments_to_pdf(&assignments, 5);
        prop_assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (c, &p) in pdf.iter().enumerate() {
            let count = assignments.iter().filter(|&&a| a == c).count();
            let expected = count as f64 / assignments.len() as f64;
            prop_assert!((p - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn kmeans_is_permutation_insensitive_in_inertia(
        n in 10usize..40,
        seed in 0u64..200,
    ) {
        let data = random_data(n, 2, seed);
        let model_a = KMeans::fit(&data, &KMeansConfig::new(3));
        // Reverse the row order; optimum inertia should be similar (same
        // data set, same seeding distribution over points).
        let rev_idx: Vec<usize> = (0..n).rev().collect();
        let rev = data.gather_rows(&rev_idx);
        let model_b = KMeans::fit(&rev, &KMeansConfig::new(3));
        // Lloyd's is a local optimizer: allow slack, but they should be in
        // the same ballpark rather than wildly divergent.
        let (a, b) = (model_a.inertia(), model_b.inertia());
        prop_assert!(a <= b * 3.0 + 1e-3 && b <= a * 3.0 + 1e-3, "{a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn silhouette_is_bounded_and_permutation_invariant(
        n_per in 4usize..20,
        spread_deci in 1u32..40,
        seed in 0u64..100,
        relabel in 0usize..3,
    ) {
        use fairdms_clustering::silhouette;
        let spread = spread_deci as f32 / 10.0;
        let mut rng = TensorRng::seeded(seed);
        let centers = [[0.0f32, 0.0], [8.0, 0.0], [0.0, 8.0]];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                data.push(c[0] + rng.next_normal_with(0.0, spread));
                data.push(c[1] + rng.next_normal_with(0.0, spread));
                labels.push(ci);
            }
        }
        let data = Tensor::from_vec(data, &[n_per * 3, 2]);
        let s = silhouette(&data, &labels, 3);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s} out of range");
        // Invariance under any label permutation.
        let perm: Vec<usize> = labels.iter().map(|&l| (l + relabel) % 3).collect();
        let sp = silhouette(&data, &perm, 3);
        prop_assert!((s - sp).abs() < 1e-9);
    }

    #[test]
    fn minibatch_model_answers_like_a_kmeans_model(
        n in 30usize..150,
        k in 2usize..6,
        seed in 0u64..100,
    ) {
        use fairdms_clustering::{fit_minibatch, MiniBatchConfig};
        let mut rng = TensorRng::seeded(seed);
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            let c = (i % k) as f32 * 6.0;
            data.push(c + rng.next_normal_with(0.0, 0.4));
            data.push(rng.next_normal_with(0.0, 0.4));
        }
        let data = Tensor::from_vec(data, &[n, 2]);
        let model = fit_minibatch(&data, &MiniBatchConfig {
            k, batch_size: 16, steps: 40, seed,
        });
        prop_assert_eq!(model.k(), k);
        // Every point assigned to its nearest center; inertia consistent.
        let pred = model.predict(&data);
        for (i, &a) in pred.iter().enumerate() {
            let (nearest, _) = model.predict_one(data.row(i));
            prop_assert_eq!(a, nearest);
        }
        prop_assert!(model.inertia() >= 0.0);
        prop_assert!((model.score(&data) - model.inertia()).abs() < 1e-2 * model.inertia().max(1.0));
    }
}
