//! Property tests for loader coverage and pipeline-simulator invariants.

use fairdms_dataloader::pipesim::{simulate, PipelineParams};
use fairdms_dataloader::{DataLoader, DataLoaderConfig, VecDataset};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn loader_yields_each_index_once(
        n in 1usize..300,
        batch_size in 1usize..40,
        workers in 0usize..6,
    ) {
        let dl = DataLoader::new(
            Arc::new(VecDataset::new((0..n).collect::<Vec<usize>>())),
            DataLoaderConfig {
                batch_size,
                num_workers: workers,
                prefetch_batches: 2,
                drop_last: false,
            },
        );
        let mut seen = vec![0usize; n];
        for batch in dl.epoch((0..n).collect()) {
            prop_assert!(batch.len() <= batch_size);
            for item in batch {
                seen[item] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn loader_preserves_batch_order(
        n in 1usize..200,
        batch_size in 1usize..16,
        workers in 1usize..5,
    ) {
        let dl = DataLoader::new(
            Arc::new(VecDataset::new((0..n).collect::<Vec<usize>>())),
            DataLoaderConfig {
                batch_size,
                num_workers: workers,
                prefetch_batches: 3,
                drop_last: false,
            },
        );
        let flat: Vec<usize> = dl.epoch((0..n).collect()).flatten().collect();
        prop_assert_eq!(flat, (0..n).collect::<Vec<usize>>());
    }

    #[test]
    fn pipesim_time_is_monotone_and_bounded(
        n in 1usize..400,
        batch_size in 1usize..32,
        workers in 1usize..12,
        fetch_us in 1.0f64..5_000.0,
        compute_ms in 0.0f64..10.0,
    ) {
        let p = PipelineParams {
            n_samples: n,
            batch_size,
            workers,
            prefetch_batches: 2,
            fetch_secs: vec![fetch_us * 1e-6],
            compute_secs_per_batch: compute_ms * 1e-3,
        };
        let r = simulate(&p);
        // Lower bounds: all compute serial; fetch split across workers.
        prop_assert!(r.epoch_secs >= r.total_compute_secs * 0.999);
        prop_assert!(r.epoch_secs >= r.total_fetch_secs / workers as f64 * 0.999);
        // Upper bound: fully serial execution.
        let serial = r.total_compute_secs + r.total_fetch_secs;
        prop_assert!(r.epoch_secs <= serial * 1.001 + 1e-9);
        prop_assert!(r.mean_io_wait_secs <= r.max_io_wait_secs + 1e-12);
    }

    #[test]
    fn pipesim_more_workers_never_hurt(
        n in 16usize..256,
        batch_size in 1usize..16,
        fetch_us in 10.0f64..2_000.0,
        compute_ms in 0.0f64..4.0,
    ) {
        let run = |workers: usize| {
            simulate(&PipelineParams {
                n_samples: n,
                batch_size,
                workers,
                prefetch_batches: 2,
                fetch_secs: vec![fetch_us * 1e-6],
                compute_secs_per_batch: compute_ms * 1e-3,
            })
            .epoch_secs
        };
        let mut prev = f64::INFINITY;
        for w in [1usize, 2, 4, 8] {
            let t = run(w);
            prop_assert!(t <= prev * 1.001, "workers {w}: {t} > {prev}");
            prev = t;
        }
    }
}

/// Failure injection: a dataset whose `get` panics on one index. The
/// poisoned worker dies, the stream terminates early instead of hanging,
/// and dropping the stream joins the surviving threads cleanly.
#[test]
fn poisoned_dataset_terminates_instead_of_hanging() {
    use fairdms_dataloader::{DataLoader, DataLoaderConfig, Dataset};
    use std::sync::Arc;

    struct Poisoned;
    impl Dataset for Poisoned {
        type Item = usize;
        fn len(&self) -> usize {
            64
        }
        fn get(&self, index: usize) -> usize {
            assert_ne!(index, 40, "poisoned sample");
            index
        }
    }

    let dl = DataLoader::new(
        Arc::new(Poisoned),
        DataLoaderConfig {
            num_workers: 2,
            batch_size: 8,
            prefetch_batches: 2,
            drop_last: false,
        },
    );
    let produced: usize = dl.epoch((0..64).collect()).map(|b| b.len()).sum();
    // The batch containing index 40 (and possibly later ones) is lost, but
    // the iterator must end rather than deadlock.
    assert!(produced < 64, "poisoned batch must not be produced");
}
