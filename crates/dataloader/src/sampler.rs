//! Index samplers: the epoch-ordering policies of the loader.

use fairdms_tensor::rng::TensorRng;

/// Produces the index order for one epoch.
pub trait Sampler: Send {
    /// The index sequence for the next epoch over `n` items.
    fn epoch_order(&mut self, n: usize) -> Vec<usize>;
}

/// Uniform random permutation per epoch (the default training sampler).
pub struct RandomSampler {
    rng: TensorRng,
}

impl RandomSampler {
    /// A seeded random sampler: the same seed yields the same sequence of
    /// epoch permutations.
    pub fn seeded(seed: u64) -> Self {
        RandomSampler {
            rng: TensorRng::seeded(seed),
        }
    }
}

impl Sampler for RandomSampler {
    fn epoch_order(&mut self, n: usize) -> Vec<usize> {
        self.rng.permutation(n)
    }
}

/// In-order traversal (evaluation / deterministic replay).
#[derive(Default)]
pub struct SequentialSampler;

impl Sampler for SequentialSampler {
    fn epoch_order(&mut self, n: usize) -> Vec<usize> {
        (0..n).collect()
    }
}

/// Splits an epoch order into batch index lists. The final batch may be
/// smaller unless `drop_last` is set.
pub struct BatchIndices {
    order: Vec<usize>,
    batch_size: usize,
    drop_last: bool,
    cursor: usize,
}

impl BatchIndices {
    /// Creates a batch iterator over an epoch order.
    pub fn new(order: Vec<usize>, batch_size: usize, drop_last: bool) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIndices {
            order,
            batch_size,
            drop_last,
            cursor: 0,
        }
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        let n = self.order.len();
        if self.drop_last {
            n / self.batch_size
        } else {
            n.div_ceil(self.batch_size)
        }
    }
}

impl Iterator for BatchIndices {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        if self.drop_last && end - self.cursor < self.batch_size {
            return None;
        }
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sampler_is_a_permutation() {
        let mut s = RandomSampler::seeded(0);
        let order = s.epoch_order(100);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_sampler_differs_across_epochs_but_reproduces_with_seed() {
        let mut a = RandomSampler::seeded(7);
        let e1 = a.epoch_order(50);
        let e2 = a.epoch_order(50);
        assert_ne!(e1, e2, "epochs should reshuffle");
        let mut b = RandomSampler::seeded(7);
        assert_eq!(b.epoch_order(50), e1);
    }

    #[test]
    fn sequential_sampler_is_identity() {
        let mut s = SequentialSampler;
        assert_eq!(s.epoch_order(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn batching_covers_all_indices() {
        let batches: Vec<Vec<usize>> = BatchIndices::new((0..10).collect(), 4, false).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2], vec![8, 9]);
        let flat: Vec<usize> = batches.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_last_discards_partial_batch() {
        let it = BatchIndices::new((0..10).collect(), 4, true);
        assert_eq!(it.num_batches(), 2);
        let batches: Vec<Vec<usize>> = it.collect();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.len() == 4));
    }

    #[test]
    fn num_batches_matches_iteration() {
        for (n, bs, drop) in [(10, 3, false), (10, 3, true), (9, 3, true), (0, 4, false)] {
            let it = BatchIndices::new((0..n).collect(), bs, drop);
            let expected = it.num_batches();
            assert_eq!(it.count(), expected, "n={n} bs={bs} drop={drop}");
        }
    }
}
