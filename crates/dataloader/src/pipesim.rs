//! Discrete-event simulation of the prefetching training pipeline.
//!
//! The paper's Figs 6–8 were measured on a testbed (remote MongoDB / NFS
//! behind 100 GbE, V100 compute) this repository cannot reproduce directly.
//! Per the substitution rule in DESIGN.md, the *per-operation* costs are
//! measured for real on this machine (codec decode CPU) or modeled
//! explicitly (wire latency/bandwidth, compute time per batch), and this
//! module composes them through the same pipeline the real loader
//! implements: `W` fetch workers pull samples, grouped into batches of `B`,
//! under a bounded prefetch window, while the trainer consumes batches in
//! order.
//!
//! The simulator is causally exact for that pipeline: a worker may start a
//! sample of batch `b` only after batch `b − prefetch` finished computing
//! (buffer back-pressure), a batch is ready when its last sample lands, and
//! the trainer is a single serial server.

/// Input parameters of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineParams {
    /// Samples in the epoch.
    pub n_samples: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Concurrent fetch workers (the paper's "# workers" axis).
    pub workers: usize,
    /// Prefetch window in batches (torch `prefetch_factor`).
    pub prefetch_batches: usize,
    /// Per-sample fetch service time in seconds (wire + decode). One entry
    /// per sample in epoch order; shorter vectors are cycled.
    pub fetch_secs: Vec<f64>,
    /// Compute time for a full batch of `batch_size` samples, in seconds.
    pub compute_secs_per_batch: f64,
}

/// Simulation output for one epoch.
#[derive(Clone, Debug, Default)]
pub struct EpochReport {
    /// Wall-clock span of the epoch (fetch start → last compute end).
    pub epoch_secs: f64,
    /// Mean stall observed by the trainer before each batch.
    pub mean_io_wait_secs: f64,
    /// Maximum per-batch stall.
    pub max_io_wait_secs: f64,
    /// Total fetch work (Σ service times) — a lower bound on
    /// `workers × epoch_secs`.
    pub total_fetch_secs: f64,
    /// Total compute work.
    pub total_compute_secs: f64,
    /// Number of batches executed.
    pub batches: usize,
}

impl EpochReport {
    /// Fraction of the epoch the trainer spent stalled on I/O.
    pub fn io_stall_fraction(&self) -> f64 {
        if self.epoch_secs <= 0.0 {
            return 0.0;
        }
        (self.mean_io_wait_secs * self.batches as f64) / self.epoch_secs
    }
}

/// Runs the discrete-event simulation.
pub fn simulate(params: &PipelineParams) -> EpochReport {
    assert!(params.batch_size > 0, "batch size must be positive");
    assert!(params.workers > 0, "need at least one worker");
    assert!(!params.fetch_secs.is_empty(), "need fetch service times");
    assert!(
        params.fetch_secs.iter().all(|&t| t >= 0.0),
        "negative fetch time"
    );
    assert!(
        params.compute_secs_per_batch >= 0.0,
        "negative compute time"
    );

    let n = params.n_samples;
    let bs = params.batch_size;
    let n_batches = n.div_ceil(bs);
    if n_batches == 0 {
        return EpochReport::default();
    }
    let prefetch = params.prefetch_batches.max(1);

    // Worker pool: next-free-time per worker.
    let mut worker_free = vec![0.0f64; params.workers];
    // Compute completion times per batch (filled as we go).
    let mut compute_done = vec![0.0f64; n_batches];
    let mut last_compute_end = 0.0f64;
    let mut io_waits = Vec::with_capacity(n_batches);
    let mut total_fetch = 0.0f64;

    let mut sample_cursor = 0usize;
    for b in 0..n_batches {
        // Back-pressure: fetching of batch b may only begin after batch
        // b − prefetch finished computing (its buffer slot freed).
        let gate = if b >= prefetch {
            compute_done[b - prefetch]
        } else {
            0.0
        };

        let batch_samples = if b == n_batches - 1 { n - b * bs } else { bs };
        let mut ready = 0.0f64;
        for _ in 0..batch_samples {
            let service = params.fetch_secs[sample_cursor % params.fetch_secs.len()];
            sample_cursor += 1;
            total_fetch += service;
            // Earliest-free worker takes the sample.
            let w = (0..params.workers)
                .min_by(|&a, &bb| worker_free[a].total_cmp(&worker_free[bb]))
                .unwrap();
            let start = worker_free[w].max(gate);
            let done = start + service;
            worker_free[w] = done;
            ready = ready.max(done);
        }

        // Trainer consumes in order; scale compute for a short final batch.
        let compute = params.compute_secs_per_batch * batch_samples as f64 / bs as f64;
        let start = ready.max(last_compute_end);
        io_waits.push((start - last_compute_end).max(0.0));
        last_compute_end = start + compute;
        compute_done[b] = last_compute_end;
    }

    let mean_io_wait = io_waits.iter().sum::<f64>() / io_waits.len() as f64;
    let max_io_wait = io_waits.iter().cloned().fold(0.0f64, f64::max);
    EpochReport {
        epoch_secs: last_compute_end,
        mean_io_wait_secs: mean_io_wait,
        max_io_wait_secs: max_io_wait,
        total_fetch_secs: total_fetch,
        total_compute_secs: params.compute_secs_per_batch * n as f64 / bs as f64,
        batches: n_batches,
    }
}

/// Convenience: uniform fetch time for all samples.
pub fn uniform_params(
    n_samples: usize,
    batch_size: usize,
    workers: usize,
    fetch_secs: f64,
    compute_secs_per_batch: f64,
) -> PipelineParams {
    PipelineParams {
        n_samples,
        batch_size,
        workers,
        prefetch_batches: 2,
        fetch_secs: vec![fetch_secs],
        compute_secs_per_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_epoch_approaches_total_compute() {
        // Fetch is essentially free: epoch time ≈ total compute.
        let p = uniform_params(1000, 10, 4, 1e-6, 0.01);
        let r = simulate(&p);
        assert_eq!(r.batches, 100);
        assert!(r.epoch_secs >= r.total_compute_secs);
        assert!(
            r.epoch_secs < r.total_compute_secs * 1.02,
            "epoch {} vs compute {}",
            r.epoch_secs,
            r.total_compute_secs
        );
        assert!(r.mean_io_wait_secs < 1e-4);
    }

    #[test]
    fn io_bound_epoch_is_limited_by_worker_throughput() {
        // Compute is free: epoch ≈ total_fetch / workers.
        let p = uniform_params(400, 10, 4, 0.01, 0.0);
        let r = simulate(&p);
        let bound = r.total_fetch_secs / 4.0;
        assert!(r.epoch_secs >= bound * 0.99);
        assert!(
            r.epoch_secs < bound * 1.3,
            "epoch {} vs bound {bound}",
            r.epoch_secs
        );
        assert!(r.io_stall_fraction() > 0.5);
    }

    #[test]
    fn more_workers_never_slow_the_epoch() {
        let mut prev = f64::INFINITY;
        for workers in [1usize, 2, 4, 8, 16] {
            let p = uniform_params(256, 8, workers, 0.004, 0.002);
            let r = simulate(&p);
            assert!(
                r.epoch_secs <= prev * 1.001,
                "workers={workers}: {} > {prev}",
                r.epoch_secs
            );
            prev = r.epoch_secs;
        }
    }

    #[test]
    fn epoch_time_lower_bounds_hold() {
        let p = PipelineParams {
            n_samples: 123,
            batch_size: 7,
            workers: 3,
            prefetch_batches: 2,
            fetch_secs: vec![0.002, 0.004, 0.001],
            compute_secs_per_batch: 0.003,
        };
        let r = simulate(&p);
        assert!(r.epoch_secs >= r.total_compute_secs * 0.999);
        assert!(r.epoch_secs >= r.total_fetch_secs / 3.0 * 0.999);
        assert!(r.max_io_wait_secs >= r.mean_io_wait_secs);
    }

    #[test]
    fn larger_batches_reduce_per_epoch_overhead_when_io_bound() {
        // With per-sample latency fixed, bigger batches amortize the
        // synchronous first-batch stall — the Fig 6a/7a trend.
        let run = |bs: usize| {
            let p = PipelineParams {
                n_samples: 512,
                batch_size: bs,
                workers: 8,
                prefetch_batches: 2,
                fetch_secs: vec![0.003],
                compute_secs_per_batch: 0.001 * bs as f64,
            };
            simulate(&p).epoch_secs
        };
        // Same total compute; IO overlap improves modestly with batch size.
        assert!(run(64) <= run(8) * 1.05);
    }

    #[test]
    fn prefetch_window_bounds_lookahead() {
        // prefetch=1 forces near-serial fetch/compute; a large window
        // overlaps fully. The bounded window must never be faster.
        let base = PipelineParams {
            n_samples: 200,
            batch_size: 10,
            workers: 4,
            prefetch_batches: 1,
            fetch_secs: vec![0.004],
            compute_secs_per_batch: 0.004,
        };
        let tight = simulate(&base);
        let mut wide_p = base.clone();
        wide_p.prefetch_batches = 16;
        let wide = simulate(&wide_p);
        assert!(wide.epoch_secs <= tight.epoch_secs + 1e-9);
    }

    #[test]
    fn empty_epoch_is_zero() {
        let p = uniform_params(0, 8, 2, 0.001, 0.001);
        let r = simulate(&p);
        assert_eq!(r.batches, 0);
        assert_eq!(r.epoch_secs, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let mut p = uniform_params(8, 2, 1, 0.001, 0.0);
        p.workers = 0;
        simulate(&p);
    }
}
