//! # fairdms-dataloader
//!
//! The data-loading substrate behind the paper's training experiments.
//! §III-D describes the stack precisely: "Dataset returns a data item
//! corresponding to a given index. Sampler creates random permutations of
//! indices … DataLoader fetches one mini-batch worth of indices from the
//! sampler … worker processes consume these indices, and fetch data items
//! from Dataset." The paper extends that loader to fetch from MongoDB with
//! multiple concurrent clients; [`DataLoader`] reproduces the same
//! architecture with worker threads and bounded prefetch.
//!
//! [`pipesim`] is the companion discrete-event model used to regenerate the
//! epoch-time and I/O-time sweeps of Figs 6–8 from measured per-sample
//! costs (see DESIGN.md for the substitution rationale).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod loader;
pub mod pipesim;
pub mod sampler;

pub use loader::{DataLoader, DataLoaderConfig};
pub use sampler::{BatchIndices, RandomSampler, Sampler, SequentialSampler};

/// A random-access dataset: the `torch.utils.data.Dataset` contract.
pub trait Dataset: Send + Sync {
    /// The item type produced per index.
    type Item: Send + 'static;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetches the item at `index` (0-based, `< len()`).
    fn get(&self, index: usize) -> Self::Item;
}

/// Blanket implementation so `Arc<D>` is itself a dataset.
impl<D: Dataset + ?Sized> Dataset for std::sync::Arc<D> {
    type Item = D::Item;

    fn len(&self) -> usize {
        (**self).len()
    }

    fn get(&self, index: usize) -> Self::Item {
        (**self).get(index)
    }
}

/// An in-memory dataset over a vector of cloneable items — handy in tests
/// and for pre-materialized tensors.
pub struct VecDataset<T: Clone + Send + Sync + 'static> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync + 'static> VecDataset<T> {
    /// Wraps a vector of items.
    pub fn new(items: Vec<T>) -> Self {
        VecDataset { items }
    }
}

impl<T: Clone + Send + Sync + 'static> Dataset for VecDataset<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn get(&self, index: usize) -> T {
        self.items[index].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn vec_dataset_serves_items() {
        let ds = VecDataset::new(vec![10, 20, 30]);
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.get(1), 20);
    }

    #[test]
    fn arc_of_dataset_is_a_dataset() {
        let ds = Arc::new(VecDataset::new(vec![1u8, 2]));
        assert_eq!(Dataset::len(&ds), 2);
        assert_eq!(Dataset::get(&ds, 0), 1);
    }
}
