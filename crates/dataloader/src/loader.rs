//! The multi-worker prefetching loader.
//!
//! Architecture (mirroring the PyTorch DataLoader the paper extends):
//! batches of indices flow through a bounded channel to `num_workers`
//! fetch threads; each worker materializes its batch by calling
//! [`Dataset::get`] per index and sends the result to a reorder stage that
//! restores batch order. The bounded channels implement prefetch
//! back-pressure: workers stay at most `prefetch_batches` ahead of the
//! consumer, exactly like `torch`'s `prefetch_factor`.

use crate::sampler::BatchIndices;
use crate::Dataset;
use crossbeam_channel::{bounded, Receiver};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Loader configuration.
#[derive(Clone, Debug)]
pub struct DataLoaderConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of fetch threads. `0` fetches synchronously on the consumer
    /// thread (like `num_workers=0` in torch).
    pub num_workers: usize,
    /// How many batches may be in flight ahead of the consumer.
    pub prefetch_batches: usize,
    /// Whether to drop a trailing partial batch.
    pub drop_last: bool,
}

impl Default for DataLoaderConfig {
    fn default() -> Self {
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 4,
            prefetch_batches: 2,
            drop_last: false,
        }
    }
}

/// A multi-worker batch loader over a [`Dataset`].
pub struct DataLoader<D: Dataset + 'static> {
    dataset: Arc<D>,
    cfg: DataLoaderConfig,
}

impl<D: Dataset + 'static> DataLoader<D> {
    /// Creates a loader over a shared dataset.
    pub fn new(dataset: Arc<D>, cfg: DataLoaderConfig) -> Self {
        assert!(cfg.batch_size > 0, "batch size must be positive");
        DataLoader { dataset, cfg }
    }

    /// The loader configuration.
    pub fn config(&self) -> &DataLoaderConfig {
        &self.cfg
    }

    /// Runs one epoch in the given index order, yielding batches of items
    /// in order.
    pub fn epoch(&self, order: Vec<usize>) -> BatchStream<D::Item> {
        let batches = BatchIndices::new(order, self.cfg.batch_size, self.cfg.drop_last);
        if self.cfg.num_workers == 0 {
            // Synchronous path: materialize lazily on `next()`.
            return BatchStream::sync(Arc::clone(&self.dataset), batches);
        }

        let n_batches = batches.num_batches();
        let capacity = self.cfg.prefetch_batches.max(1);
        let (idx_tx, idx_rx) = bounded::<(usize, Vec<usize>)>(capacity);
        let (out_tx, out_rx) = bounded::<(usize, Vec<D::Item>)>(capacity);

        // Feeder: enumerates batches into the bounded index queue.
        let feeder = std::thread::spawn(move || {
            for (seq, batch) in batches.enumerate() {
                if idx_tx.send((seq, batch)).is_err() {
                    break; // consumer hung up
                }
            }
        });

        // Workers: fetch every item of the batch, forward with its sequence.
        let mut workers = Vec::with_capacity(self.cfg.num_workers);
        for _ in 0..self.cfg.num_workers {
            let rx = idx_rx.clone();
            let tx = out_tx.clone();
            let ds = Arc::clone(&self.dataset);
            workers.push(std::thread::spawn(move || {
                while let Ok((seq, indices)) = rx.recv() {
                    let items: Vec<D::Item> = indices.iter().map(|&i| ds.get(i)).collect();
                    if tx.send((seq, items)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(out_tx);
        drop(idx_rx);

        BatchStream::threaded(out_rx, n_batches, feeder, workers)
    }
}

/// Synchronous batch materializer: indices in, items out.
type FetchFn<T> = Box<dyn FnMut(&[usize]) -> Vec<T> + Send>;

enum StreamImpl<T: Send + 'static> {
    Sync {
        fetch: FetchFn<T>,
        batches: BatchIndices,
    },
    Threaded {
        rx: Receiver<(usize, Vec<T>)>,
        next_seq: usize,
        total: usize,
        pending: BinaryHeap<SeqEntry<T>>,
        threads: Vec<JoinHandle<()>>,
    },
}

/// An in-order stream of materialized batches.
pub struct BatchStream<T: Send + 'static> {
    inner: StreamImpl<T>,
}

impl<T: Send + 'static> BatchStream<T> {
    fn sync<D: Dataset<Item = T> + 'static>(ds: Arc<D>, batches: BatchIndices) -> Self {
        BatchStream {
            inner: StreamImpl::Sync {
                fetch: Box::new(move |indices| indices.iter().map(|&i| ds.get(i)).collect()),
                batches,
            },
        }
    }

    fn threaded(
        rx: Receiver<(usize, Vec<T>)>,
        total: usize,
        feeder: JoinHandle<()>,
        mut workers: Vec<JoinHandle<()>>,
    ) -> Self {
        workers.push(feeder);
        BatchStream {
            inner: StreamImpl::Threaded {
                rx,
                next_seq: 0,
                total,
                pending: BinaryHeap::new(),
                threads: workers,
            },
        }
    }
}

/// Min-heap entry by sequence number.
struct SeqEntry<T>(usize, Vec<T>);

impl<T> PartialEq for SeqEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<T> Eq for SeqEntry<T> {}
impl<T> PartialOrd for SeqEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for SeqEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // reversed: BinaryHeap is a max-heap
    }
}

impl<T: Send + 'static> Iterator for BatchStream<T> {
    type Item = Vec<T>;

    fn next(&mut self) -> Option<Vec<T>> {
        match &mut self.inner {
            StreamImpl::Sync { fetch, batches } => batches.next().map(|idx| fetch(&idx)),
            StreamImpl::Threaded {
                rx,
                next_seq,
                total,
                pending,
                ..
            } => {
                if *next_seq >= *total {
                    return None;
                }
                loop {
                    if let Some(entry) = pending.peek() {
                        if entry.0 == *next_seq {
                            let SeqEntry(_, items) = pending.pop().unwrap();
                            *next_seq += 1;
                            return Some(items);
                        }
                    }
                    match rx.recv() {
                        Ok((seq, items)) => pending.push(SeqEntry(seq, items)),
                        Err(_) => {
                            // Workers done: drain whatever is buffered.
                            if let Some(entry) = pending.peek() {
                                if entry.0 == *next_seq {
                                    let SeqEntry(_, items) = pending.pop().unwrap();
                                    *next_seq += 1;
                                    return Some(items);
                                }
                            }
                            return None;
                        }
                    }
                }
            }
        }
    }
}

impl<T: Send + 'static> Drop for BatchStream<T> {
    fn drop(&mut self) {
        if let StreamImpl::Threaded { rx, threads, .. } = &mut self.inner {
            // Disconnect the output channel *before* joining: draining with
            // `try_recv` is not enough, because a worker blocked on the full
            // bounded channel would refill it and block again, deadlocking
            // the join. Dropping the receiver makes every in-flight and
            // future `send` fail, so workers exit, their index-queue clones
            // drop, and the feeder's `send` fails in turn.
            let (_tx, disconnected) = bounded(0);
            drop(std::mem::replace(rx, disconnected));
            for t in threads.drain(..) {
                let _ = t.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomSampler, Sampler, VecDataset};
    use std::time::Duration;

    fn loader(n: usize, cfg: DataLoaderConfig) -> DataLoader<VecDataset<usize>> {
        DataLoader::new(Arc::new(VecDataset::new((0..n).collect())), cfg)
    }

    #[test]
    fn sync_and_threaded_paths_agree() {
        let order: Vec<usize> = (0..97).rev().collect();
        let sync_batches: Vec<Vec<usize>> = loader(
            97,
            DataLoaderConfig {
                num_workers: 0,
                batch_size: 10,
                ..Default::default()
            },
        )
        .epoch(order.clone())
        .collect();
        let threaded_batches: Vec<Vec<usize>> = loader(
            97,
            DataLoaderConfig {
                num_workers: 4,
                batch_size: 10,
                ..Default::default()
            },
        )
        .epoch(order)
        .collect();
        assert_eq!(sync_batches, threaded_batches);
        assert_eq!(threaded_batches.len(), 10);
    }

    #[test]
    fn every_item_seen_exactly_once_per_epoch() {
        let mut sampler = RandomSampler::seeded(3);
        let dl = loader(
            200,
            DataLoaderConfig {
                num_workers: 3,
                batch_size: 16,
                prefetch_batches: 2,
                drop_last: false,
            },
        );
        for _ in 0..3 {
            let mut seen = vec![0u8; 200];
            for batch in dl.epoch(sampler.epoch_order(200)) {
                for item in batch {
                    seen[item] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        }
    }

    #[test]
    fn workers_overlap_slow_fetches() {
        struct SlowDs;
        impl Dataset for SlowDs {
            type Item = usize;
            fn len(&self) -> usize {
                32
            }
            fn get(&self, index: usize) -> usize {
                std::thread::sleep(Duration::from_millis(2));
                index
            }
        }
        let run = |workers: usize| {
            let dl = DataLoader::new(
                Arc::new(SlowDs),
                DataLoaderConfig {
                    num_workers: workers,
                    batch_size: 4,
                    prefetch_batches: 4,
                    drop_last: false,
                },
            );
            let t0 = std::time::Instant::now();
            let count: usize = dl.epoch((0..32).collect()).map(|b| b.len()).sum();
            assert_eq!(count, 32);
            t0.elapsed()
        };
        let serial = run(1);
        let parallel = run(8);
        assert!(
            parallel < serial,
            "8 workers ({parallel:?}) should beat 1 worker ({serial:?})"
        );
    }

    #[test]
    fn dropping_mid_epoch_does_not_hang() {
        let dl = loader(
            1000,
            DataLoaderConfig {
                num_workers: 4,
                batch_size: 8,
                prefetch_batches: 2,
                drop_last: false,
            },
        );
        let mut stream = dl.epoch((0..1000).collect());
        let _ = stream.next();
        drop(stream); // must join workers without deadlock
    }

    #[test]
    fn empty_epoch_yields_nothing() {
        let dl = loader(0, DataLoaderConfig::default());
        assert_eq!(dl.epoch(vec![]).count(), 0);
    }

    #[test]
    fn drop_last_respected_in_threaded_mode() {
        let dl = loader(
            10,
            DataLoaderConfig {
                num_workers: 2,
                batch_size: 4,
                prefetch_batches: 2,
                drop_last: true,
            },
        );
        let batches: Vec<Vec<usize>> = dl.epoch((0..10).collect()).collect();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.len() == 4));
    }
}
