//! Tomography frames: ellipse phantoms at synchrotron-CT scale.
//!
//! The Tomography dataset only appears in the paper as a *storage workload*
//! (Fig 6: 2048×2048 16-bit samples read from MongoDB/NFS during TomoGAN
//! training), so what matters here is producing frames with realistic size
//! and entropy. A Shepp-Logan-style superposition of random ellipses plus
//! Poisson-like detector noise gives both: smooth structure (compressible,
//! so Blosc has something to chew on) and noise floor (so it is not
//! trivially compressible).

use fairdms_datastore::Document;
use fairdms_tensor::rng::TensorRng;

/// One tomography frame: `size × size` 16-bit detector counts.
#[derive(Clone, Debug)]
pub struct TomoFrame {
    /// Row-major pixel counts.
    pub pixels: Vec<u16>,
    /// Frame edge length.
    pub size: usize,
    /// Frame index within the scan.
    pub index: usize,
}

impl TomoFrame {
    /// Serializes to a storage document.
    pub fn to_document(&self) -> Document {
        Document::new()
            .with("kind", "tomo")
            .with("size", self.size as i64)
            .with("index", self.index as i64)
            .with("pixels", self.pixels.clone())
    }

    /// Deserializes from a storage document.
    pub fn from_document(doc: &Document) -> Option<TomoFrame> {
        let size = doc.get_i64("size")? as usize;
        let pixels = doc.get_u16s("pixels")?.to_vec();
        if pixels.len() != size * size {
            return None;
        }
        Some(TomoFrame {
            pixels,
            size,
            index: doc.get_i64("index")? as usize,
        })
    }

    /// Pixels as normalized f32 in `[0, 1]` (for denoiser training).
    pub fn to_f32(&self) -> Vec<f32> {
        self.pixels.iter().map(|&p| p as f32 / 65535.0).collect()
    }
}

#[derive(Clone, Copy)]
struct Ellipse {
    cx: f32,
    cy: f32,
    a: f32,
    b: f32,
    cos_t: f32,
    sin_t: f32,
    intensity: f32,
}

impl Ellipse {
    #[inline]
    fn contains(&self, x: f32, y: f32) -> bool {
        let dx = x - self.cx;
        let dy = y - self.cy;
        let u = (dx * self.cos_t + dy * self.sin_t) / self.a;
        let v = (-dx * self.sin_t + dy * self.cos_t) / self.b;
        u * u + v * v <= 1.0
    }
}

/// Phantom-based tomography frame generator.
pub struct TomoSimulator {
    /// Frame edge length (paper scale: 2048; default workload scale: 512).
    pub size: usize,
    /// Number of random ellipses per phantom.
    pub n_ellipses: usize,
    /// Detector noise standard deviation, in raw counts.
    pub noise_counts: f32,
    seed: u64,
}

impl TomoSimulator {
    /// A simulator at the given frame size.
    pub fn new(size: usize, seed: u64) -> Self {
        assert!(size >= 16, "frame too small to be meaningful");
        TomoSimulator {
            size,
            n_ellipses: 12,
            noise_counts: 300.0,
            seed,
        }
    }

    /// Generates one frame. Deterministic in `(seed, index)`.
    pub fn frame(&self, index: usize) -> TomoFrame {
        let mut rng =
            TensorRng::seeded(self.seed ^ (index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let s = self.size as f32;

        let ellipses: Vec<Ellipse> = (0..self.n_ellipses)
            .map(|_| {
                let theta = rng.next_uniform(0.0, std::f32::consts::PI);
                Ellipse {
                    cx: rng.next_uniform(0.2 * s, 0.8 * s),
                    cy: rng.next_uniform(0.2 * s, 0.8 * s),
                    a: rng.next_uniform(0.05 * s, 0.3 * s),
                    b: rng.next_uniform(0.05 * s, 0.3 * s),
                    cos_t: theta.cos(),
                    sin_t: theta.sin(),
                    intensity: rng.next_uniform(2_000.0, 9_000.0),
                }
            })
            .collect();

        let mut pixels = Vec::with_capacity(self.size * self.size);
        for y in 0..self.size {
            for x in 0..self.size {
                let (xf, yf) = (x as f32, y as f32);
                let mut v = 12_000.0f32; // flat-field level
                for e in &ellipses {
                    if e.contains(xf, yf) {
                        v += e.intensity;
                    }
                }
                v += rng.next_normal_with(0.0, self.noise_counts);
                pixels.push(v.clamp(0.0, 65_535.0) as u16);
            }
        }
        TomoFrame {
            pixels,
            size: self.size,
            index,
        }
    }

    /// Generates `n` consecutive frames.
    pub fn frames(&self, n: usize) -> Vec<TomoFrame> {
        (0..n).map(|i| self.frame(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic_and_distinct() {
        let sim = TomoSimulator::new(64, 0);
        assert_eq!(sim.frame(3).pixels, sim.frame(3).pixels);
        assert_ne!(sim.frame(3).pixels, sim.frame(4).pixels);
    }

    #[test]
    fn pixel_values_are_plausible_counts() {
        let sim = TomoSimulator::new(64, 1);
        let f = sim.frame(0);
        let mean: f64 = f.pixels.iter().map(|&p| p as f64).sum::<f64>() / f.pixels.len() as f64;
        // Flat field 12k plus some ellipse mass.
        assert!(mean > 10_000.0 && mean < 40_000.0, "mean {mean}");
        // Structure exists: the frame is not constant.
        let min = *f.pixels.iter().min().unwrap();
        let max = *f.pixels.iter().max().unwrap();
        assert!(max > min + 1_000);
    }

    #[test]
    fn document_roundtrip() {
        let sim = TomoSimulator::new(32, 2);
        let f = sim.frame(5);
        let back = TomoFrame::from_document(&f.to_document()).unwrap();
        assert_eq!(back.pixels, f.pixels);
        assert_eq!(back.index, 5);
    }

    #[test]
    fn normalized_view_is_unit_range() {
        let sim = TomoSimulator::new(32, 3);
        let f = sim.frame(0).to_f32();
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn paper_scale_frame_has_paper_scale_payload() {
        // 2048×2048 u16 = 8 MiB — the Fig 6 sample size (constructed only
        // at reduced resolution here; we verify the arithmetic instead).
        let sim = TomoSimulator::new(128, 4);
        let f = sim.frame(0);
        assert_eq!(f.pixels.len() * 2, 128 * 128 * 2);
        let doc = f.to_document();
        assert!(doc.approx_size() >= 128 * 128 * 2);
    }
}
