//! # fairdms-datasets
//!
//! Synthetic equivalents of the paper's three benchmark datasets (§III-B)
//! plus the conventional labeling method they are annotated with:
//!
//! * [`bragg`] — 15×15 Bragg-peak patches rendered from the pseudo-Voigt
//!   profile, with an experiment-series simulator whose *drift model*
//!   reproduces the sample-deformation and configuration-change effects the
//!   paper's Figs 2, 10 and 16 rely on. The real BraggPeaks data (1.87 M
//!   patches from 27 APS experiments) is proprietary; the pseudo-Voigt
//!   profile is the very model the paper's conventional labeler fits, so
//!   synthetic peaks exercise identical code paths.
//! * [`voigt`] — the pseudo-Voigt profile itself, a Gauss–Newton fitter
//!   standing in for the MIDAS labeling code, and a cluster-scaling model
//!   that extrapolates measured per-peak cost to the paper's 80-core and
//!   1440-core configurations (Fig 15).
//! * [`cookiebox`] — a 16-channel electron time-of-flight simulator in the
//!   spirit of the paper's own CookieBox simulation (their dataset is also
//!   synthetic), producing energy-histogram images and ground-truth PDFs.
//! * [`tomo`] — ellipse-phantom tomography frames (16-bit), used purely as
//!   a storage workload in Fig 6.
//!
//! Every generator is seed-deterministic, and each sample type converts
//! to/from [`fairdms_datastore::Document`] for storage experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bragg;
pub mod cookiebox;
pub mod tomo;
pub mod voigt;

pub use bragg::{BraggPatch, BraggSimulator, DriftModel};
pub use cookiebox::{CookieBoxImage, CookieBoxSimulator};
pub use tomo::{TomoFrame, TomoSimulator};
pub use voigt::{fit_peak, FitConfig, FittedPeak, PeakParams};
