//! CookieBox detector simulator.
//!
//! The CookieBox (paper §III-A) is an angular array of 16 electron
//! time-of-flight spectrometers; CookieNetAE maps a 128×128 image — one
//! energy histogram per row, rows grouped by channel — to the underlying
//! energy-angle probability density. The paper's CookieBox dataset is
//! itself produced by a computational simulation, so this module follows
//! the same generative recipe: per-angle energy PDFs (Gaussian mixtures
//! whose amplitude is modulated by a circularly polarized field,
//! `cos²(θ−φ)`), Poisson-sampled into count histograms.

use fairdms_datastore::Document;
use fairdms_tensor::{rng::TensorRng, Tensor};

/// Number of spectrometer channels in the CookieBox array.
pub const CHANNELS: usize = 16;

/// One simulated CookieBox acquisition: noisy histogram image plus the
/// ground-truth PDF image (the regression target of CookieNetAE).
#[derive(Clone, Debug)]
pub struct CookieBoxImage {
    /// Row-major `size × size` count histogram (the model input).
    pub histogram: Vec<f32>,
    /// Row-major `size × size` ground-truth probability density.
    pub pdf: Vec<f32>,
    /// Image edge length (paper: 128; scaled variants supported).
    pub size: usize,
    /// Scan index (drift bookkeeping).
    pub scan: usize,
}

impl CookieBoxImage {
    /// Serializes to a storage document.
    pub fn to_document(&self) -> Document {
        Document::new()
            .with("kind", "cookiebox")
            .with("size", self.size as i64)
            .with("scan", self.scan as i64)
            .with("histogram", self.histogram.clone())
            .with("pdf", self.pdf.clone())
    }

    /// Deserializes from a storage document.
    pub fn from_document(doc: &Document) -> Option<CookieBoxImage> {
        let size = doc.get_i64("size")? as usize;
        let histogram = doc.get_f32s("histogram")?.to_vec();
        let pdf = doc.get_f32s("pdf")?.to_vec();
        if histogram.len() != size * size || pdf.len() != size * size {
            return None;
        }
        Some(CookieBoxImage {
            histogram,
            pdf,
            size,
            scan: doc.get_i64("scan")? as usize,
        })
    }
}

/// Converts acquisitions into `(x, y)` training tensors of shape
/// `[n, 1, size, size]` each (histogram → PDF regression).
///
/// Histograms are standardized per image (zero mean, unit variance) and
/// PDF targets are scaled by `size` so both sides of the regression have
/// O(1) dynamic range — raw counts and raw densities differ by orders of
/// magnitude, which stalls an unnormalized network.
pub fn to_training_tensors(images: &[CookieBoxImage]) -> (Tensor, Tensor) {
    assert!(!images.is_empty(), "empty image set");
    let size = images[0].size;
    let mut x = Vec::with_capacity(images.len() * size * size);
    let mut y = Vec::with_capacity(images.len() * size * size);
    for img in images {
        assert_eq!(img.size, size, "mixed image sizes");
        let n = img.histogram.len() as f32;
        let mean: f32 = img.histogram.iter().sum::<f32>() / n;
        let var: f32 = img
            .histogram
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        let inv = 1.0 / (var.sqrt() + 1e-6);
        x.extend(img.histogram.iter().map(|&v| (v - mean) * inv));
        y.extend(img.pdf.iter().map(|&v| v * size as f32));
    }
    (
        Tensor::from_vec(x, &[images.len(), 1, size, size]),
        Tensor::from_vec(y, &[images.len(), 1, size, size]),
    )
}

/// Generates CookieBox acquisitions with slow per-scan drift of the photon
/// line (the gradual distribution shift behind the monotone Fig 11 trend).
pub struct CookieBoxSimulator {
    /// Image edge length.
    pub size: usize,
    /// Mean photon counts per row (Poisson intensity scale). Lower counts
    /// make the inverse problem harder (the paper's "number of detected
    /// electrons is low" regime).
    pub counts_per_row: f32,
    /// Per-scan drift of the central line position, in units of the image
    /// width (gradual experiment drift).
    pub drift_per_scan: f32,
    seed: u64,
}

impl CookieBoxSimulator {
    /// A simulator at the given resolution.
    pub fn new(size: usize, seed: u64) -> Self {
        assert!(
            size >= CHANNELS,
            "image must have at least one row per channel"
        );
        CookieBoxSimulator {
            size,
            counts_per_row: 220.0,
            drift_per_scan: 0.004,
            seed,
        }
    }

    /// The noiseless energy PDF for a given scan and polarization phase.
    fn pdf_image(&self, scan: usize, phase: f32) -> Vec<f32> {
        let s = self.size;
        let drift = self.drift_per_scan * scan as f32;
        let mut pdf = vec![0.0f32; s * s];
        for row in 0..s {
            let channel = row * CHANNELS / s;
            let theta = channel as f32 / CHANNELS as f32 * std::f32::consts::TAU;
            // Circular polarization: dipole-like modulation per channel.
            let modulation = 0.25 + 0.75 * (theta - phase).cos().powi(2);
            // Two photo-lines whose positions shift with channel angle and
            // drift with the scan index.
            let mu1 = (0.35 + drift + 0.05 * (theta).sin()) * s as f32;
            let mu2 = (0.65 + drift + 0.04 * (theta + phase).cos()) * s as f32;
            let (s1, s2) = (0.035 * s as f32, 0.05 * s as f32);
            let row_buf = &mut pdf[row * s..(row + 1) * s];
            let mut total = 0.0f32;
            for (e, v) in row_buf.iter_mut().enumerate() {
                let x = e as f32;
                let g1 = (-(x - mu1).powi(2) / (2.0 * s1 * s1)).exp();
                let g2 = 0.6 * (-(x - mu2).powi(2) / (2.0 * s2 * s2)).exp();
                *v = modulation * (g1 + g2) + 1e-4;
                total += *v;
            }
            // Normalize each row into a probability density.
            for v in row_buf.iter_mut() {
                *v /= total;
            }
        }
        pdf
    }

    /// Generates one acquisition. Deterministic in `(seed, scan, shot)`.
    pub fn acquire(&self, scan: usize, shot: usize) -> CookieBoxImage {
        let mut rng = TensorRng::seeded(
            self.seed
                ^ (scan as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ (shot as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        let phase = rng.next_uniform(0.0, std::f32::consts::TAU);
        let pdf = self.pdf_image(scan, phase);
        let s = self.size;
        let mut histogram = vec![0.0f32; s * s];
        for row in 0..s {
            for e in 0..s {
                let lambda = pdf[row * s + e] * self.counts_per_row;
                histogram[row * s + e] = rng.next_poisson(lambda) as f32;
            }
        }
        CookieBoxImage {
            histogram,
            pdf,
            size: s,
            scan,
        }
    }

    /// Generates a batch of acquisitions for one scan.
    pub fn scan(&self, scan: usize, n: usize) -> Vec<CookieBoxImage> {
        (0..n).map(|shot| self.acquire(scan, shot)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_probability_densities() {
        let sim = CookieBoxSimulator::new(64, 0);
        let img = sim.acquire(0, 0);
        for row in 0..64 {
            let sum: f32 = img.pdf[row * 64..(row + 1) * 64].iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "row {row} sums to {sum}");
        }
    }

    #[test]
    fn histogram_counts_track_pdf() {
        let sim = CookieBoxSimulator::new(64, 1);
        let img = sim.acquire(0, 0);
        // Aggregate counts should land near counts_per_row per row.
        let total: f32 = img.histogram.iter().sum();
        let expected = sim.counts_per_row * 64.0;
        assert!(
            (total - expected).abs() < expected * 0.1,
            "total {total} vs expected {expected}"
        );
        // Zero-probability regions stay near zero counts.
        assert!(img.histogram.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn acquisitions_are_deterministic() {
        let sim = CookieBoxSimulator::new(32, 9);
        assert_eq!(sim.acquire(2, 3).histogram, sim.acquire(2, 3).histogram);
        assert_ne!(sim.acquire(2, 3).histogram, sim.acquire(2, 4).histogram);
    }

    #[test]
    fn drift_moves_the_photo_line() {
        let sim = CookieBoxSimulator::new(64, 2);
        // Compare mean energy (per-row expectation) across distant scans.
        let mean_energy = |img: &CookieBoxImage| {
            let mut acc = 0.0f32;
            for row in 0..img.size {
                for e in 0..img.size {
                    acc += img.pdf[row * img.size + e] * e as f32;
                }
            }
            acc / img.size as f32
        };
        let early = mean_energy(&sim.acquire(0, 0));
        let late = mean_energy(&sim.acquire(60, 0));
        assert!(late > early + 2.0, "early {early}, late {late}");
    }

    #[test]
    fn document_roundtrip() {
        let sim = CookieBoxSimulator::new(32, 3);
        let img = sim.acquire(1, 0);
        let back = CookieBoxImage::from_document(&img.to_document()).unwrap();
        assert_eq!(back.histogram, img.histogram);
        assert_eq!(back.pdf, img.pdf);
        assert_eq!(back.scan, 1);
    }

    #[test]
    fn training_tensors_shapes() {
        let sim = CookieBoxSimulator::new(32, 4);
        let imgs = sim.scan(0, 3);
        let (x, y) = to_training_tensors(&imgs);
        assert_eq!(x.shape(), &[3, 1, 32, 32]);
        assert_eq!(y.shape(), &[3, 1, 32, 32]);
    }
}
