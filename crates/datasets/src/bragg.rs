//! Synthetic BraggPeaks: patch generation plus the experiment-series drift
//! model that drives the paper's degradation experiments.
//!
//! The paper's HEDM narrative: a model trained on early scans performs well
//! until *sample deformation* changes peak shapes (Fig 2, degradation after
//! scan ~444), and separately a *configuration change* mid-experiment
//! produces a bimodal data distribution (Fig 10). [`DriftModel`] encodes
//! both effects as smooth shifts of the peak-parameter distribution over
//! the scan index.

use crate::voigt::{render, PeakParams};
use fairdms_datastore::Document;
use fairdms_tensor::{rng::TensorRng, Tensor};

/// One labeled Bragg-peak patch.
#[derive(Clone, Debug)]
pub struct BraggPatch {
    /// Row-major pixel intensities (`size × size`).
    pub pixels: Vec<f32>,
    /// Patch edge length in pixels.
    pub size: usize,
    /// Ground-truth center (the label BraggNN regresses).
    pub center: (f32, f32),
    /// Scan index this patch came from.
    pub scan: usize,
    /// Generating parameters (withheld from models; used by tests).
    pub params: PeakParams,
}

impl BraggPatch {
    /// Pixels as a `[1, size, size]`-shaped tensor row (flattened image).
    pub fn to_tensor_row(&self) -> Vec<f32> {
        self.pixels.clone()
    }

    /// Normalized label in `[0, 1]²` (what BraggNN trains against).
    pub fn normalized_center(&self) -> (f32, f32) {
        (
            self.center.0 / (self.size as f32 - 1.0),
            self.center.1 / (self.size as f32 - 1.0),
        )
    }

    /// Serializes to a storage document.
    pub fn to_document(&self) -> Document {
        Document::new()
            .with("kind", "bragg")
            .with("size", self.size as i64)
            .with("scan", self.scan as i64)
            .with("cx", self.center.0 as f64)
            .with("cy", self.center.1 as f64)
            .with("pixels", self.pixels.clone())
    }

    /// Deserializes from a storage document (inverse of
    /// [`BraggPatch::to_document`]; generator parameters are not persisted).
    pub fn from_document(doc: &Document) -> Option<BraggPatch> {
        let size = doc.get_i64("size")? as usize;
        let pixels = doc.get_f32s("pixels")?.to_vec();
        if pixels.len() != size * size {
            return None;
        }
        let cx = doc.get_f64("cx")? as f32;
        let cy = doc.get_f64("cy")? as f32;
        let scan = doc.get_i64("scan")? as usize;
        Some(BraggPatch {
            pixels,
            size,
            center: (cx, cy),
            scan,
            params: PeakParams {
                amplitude: 0.0,
                cx,
                cy,
                width: 0.0,
                eta: 0.0,
                background: 0.0,
            },
        })
    }
}

/// Converts a set of patches into training tensors `(x, y)`:
/// `x` is `[n, 1, size, size]`, `y` is `[n, 2]` normalized centers.
///
/// Pixels are standardized per patch (zero mean, unit variance), matching
/// the preprocessing the real BraggNN pipeline applies — raw detector
/// counts span orders of magnitude and saturate an unnormalized network.
/// The pseudo-Voigt fitter is affine-invariant in intensity, so labels
/// derived from standardized pixels are identical to raw-pixel labels.
pub fn to_training_tensors(patches: &[BraggPatch]) -> (Tensor, Tensor) {
    assert!(!patches.is_empty(), "empty patch set");
    let size = patches[0].size;
    let mut x = Vec::with_capacity(patches.len() * size * size);
    let mut y = Vec::with_capacity(patches.len() * 2);
    for p in patches {
        assert_eq!(p.size, size, "mixed patch sizes");
        let n = p.pixels.len() as f32;
        let mean: f32 = p.pixels.iter().sum::<f32>() / n;
        let var: f32 = p
            .pixels
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        let inv = 1.0 / (var.sqrt() + 1e-6);
        x.extend(p.pixels.iter().map(|&v| (v - mean) * inv));
        let (cx, cy) = p.normalized_center();
        y.push(cx);
        y.push(cy);
    }
    (
        Tensor::from_vec(x, &[patches.len(), 1, size, size]),
        Tensor::from_vec(y, &[patches.len(), 2]),
    )
}

/// How the experiment's data distribution evolves over scans.
#[derive(Clone, Copy, Debug)]
pub struct DriftModel {
    /// Scan index at which sample deformation begins (Fig 2's knee).
    pub deform_start: usize,
    /// Per-scan fractional growth of peak width after `deform_start`.
    pub deform_rate: f32,
    /// Scan index of the configuration change (Fig 10's bimodality);
    /// `usize::MAX` disables it.
    pub config_change: usize,
}

impl DriftModel {
    /// A stable experiment (no drift).
    pub fn none() -> Self {
        DriftModel {
            deform_start: usize::MAX,
            deform_rate: 0.0,
            config_change: usize::MAX,
        }
    }

    /// The paper-like scenario: deformation after `deform_start`, config
    /// change at `config_change`.
    pub fn paper_like(deform_start: usize, config_change: usize) -> Self {
        DriftModel {
            deform_start,
            deform_rate: 0.035,
            config_change,
        }
    }

    /// Width multiplier for a scan.
    fn width_factor(&self, scan: usize) -> f32 {
        if scan <= self.deform_start {
            1.0
        } else {
            1.0 + self.deform_rate * (scan - self.deform_start) as f32
        }
    }

    /// Whether the scan is past the configuration change.
    fn second_mode(&self, scan: usize) -> bool {
        scan >= self.config_change
    }
}

/// Generates per-scan patch sets under a drift model.
pub struct BraggSimulator {
    /// Patch edge length (the paper uses 15×15).
    pub patch_size: usize,
    /// Drift model applied across scans.
    pub drift: DriftModel,
    /// Pixel-noise standard deviation.
    pub noise_std: f32,
    seed: u64,
}

impl BraggSimulator {
    /// A simulator with the paper's 15×15 patches.
    pub fn new(drift: DriftModel, seed: u64) -> Self {
        BraggSimulator {
            patch_size: 15,
            drift,
            noise_std: 1.5,
            seed,
        }
    }

    /// Generates the patches of one scan. Deterministic in
    /// `(seed, scan, n)`.
    pub fn scan(&self, scan: usize, n: usize) -> Vec<BraggPatch> {
        self.scan_shot(scan, 0, n)
    }

    /// Generates an independent *shot* of a scan: the drift model sees
    /// `scan` (so the physics — deformation, configuration mode — is that
    /// scan's), while the sampling noise is keyed on `(scan, shot)`.
    /// `shot > 0` yields held-out data from the same distribution as
    /// [`BraggSimulator::scan`] — use this for evaluation sets instead of
    /// offsetting the scan index, which would silently change the physics.
    pub fn scan_shot(&self, scan: usize, shot: u64, n: usize) -> Vec<BraggPatch> {
        let mut rng = TensorRng::seeded(
            self.seed
                ^ (scan as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ shot.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let size = self.patch_size as f32;
        let wf = self.drift.width_factor(scan);
        let second = self.drift.second_mode(scan);
        (0..n)
            .map(|_| {
                // Centers near the middle (peaks are pre-cropped patches).
                let cx = size / 2.0 + rng.next_normal_with(0.0, 1.3);
                let cy = size / 2.0 + rng.next_normal_with(0.0, 1.3);
                let cx = cx.clamp(2.0, size - 3.0);
                let cy = cy.clamp(2.0, size - 3.0);
                // Base shape distribution; the config change moves the
                // whole distribution (second mode): wider, more Lorentzian,
                // brighter background. The second mode's amplitude is
                // raised so its per-peak SNR matches the first mode —
                // the paper's modes are *different*, not *harder*, and an
                // intrinsically harder second phase would confound model
                // quality with distribution distance in the Fig 10 scatter.
                let (base_width, base_eta, base_bg, base_amp) = if second {
                    (2.2, 0.75, 18.0, 130.0)
                } else {
                    (1.6, 0.35, 10.0, 60.0)
                };
                let params = PeakParams {
                    amplitude: base_amp + rng.next_uniform(0.0, 80.0),
                    cx,
                    cy,
                    width: (base_width + rng.next_normal_with(0.0, 0.15)) * wf,
                    eta: (base_eta + rng.next_normal_with(0.0, 0.05)).clamp(0.0, 1.0),
                    background: base_bg + rng.next_uniform(0.0, 5.0),
                };
                let pixels = render(&params, self.patch_size, self.noise_std, &mut rng);
                BraggPatch {
                    pixels,
                    size: self.patch_size,
                    center: (params.cx, params.cy),
                    scan,
                    params,
                }
            })
            .collect()
    }

    /// Generates a series of scans: `(scan index, patches)` for scans
    /// `0..n_scans`, each with `per_scan` patches.
    pub fn series(&self, n_scans: usize, per_scan: usize) -> Vec<(usize, Vec<BraggPatch>)> {
        (0..n_scans).map(|s| (s, self.scan(s, per_scan))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_deterministic_per_seed() {
        let sim = BraggSimulator::new(DriftModel::none(), 42);
        let a = sim.scan(3, 5);
        let b = sim.scan(3, 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].pixels, b[0].pixels);
        let sim2 = BraggSimulator::new(DriftModel::none(), 43);
        assert_ne!(a[0].pixels, sim2.scan(3, 5)[0].pixels);
    }

    #[test]
    fn deformation_widens_peaks_after_onset() {
        let drift = DriftModel {
            deform_start: 10,
            deform_rate: 0.05,
            config_change: usize::MAX,
        };
        let sim = BraggSimulator::new(drift, 0);
        let early: f32 = sim.scan(5, 40).iter().map(|p| p.params.width).sum::<f32>() / 40.0;
        let late: f32 = sim.scan(30, 40).iter().map(|p| p.params.width).sum::<f32>() / 40.0;
        assert!(late > early * 1.5, "early {early}, late {late}");
    }

    #[test]
    fn config_change_creates_a_second_mode() {
        let drift = DriftModel::paper_like(usize::MAX - 1, 20);
        let sim = BraggSimulator::new(drift, 1);
        let before: f32 = sim.scan(10, 40).iter().map(|p| p.params.eta).sum::<f32>() / 40.0;
        let after: f32 = sim.scan(25, 40).iter().map(|p| p.params.eta).sum::<f32>() / 40.0;
        assert!(after > before + 0.2, "eta before {before}, after {after}");
    }

    #[test]
    fn document_roundtrip_preserves_pixels_and_label() {
        let sim = BraggSimulator::new(DriftModel::none(), 7);
        let patch = &sim.scan(2, 1)[0];
        let doc = patch.to_document();
        let back = BraggPatch::from_document(&doc).unwrap();
        assert_eq!(back.pixels, patch.pixels);
        assert_eq!(back.size, patch.size);
        assert_eq!(back.scan, patch.scan);
        assert!((back.center.0 - patch.center.0).abs() < 1e-6);
    }

    #[test]
    fn from_document_rejects_inconsistent_sizes() {
        let doc = Document::new()
            .with("kind", "bragg")
            .with("size", 15i64)
            .with("scan", 0i64)
            .with("cx", 7.0f64)
            .with("cy", 7.0f64)
            .with("pixels", vec![0.0f32; 10]);
        assert!(BraggPatch::from_document(&doc).is_none());
    }

    #[test]
    fn training_tensors_have_matching_shapes() {
        let sim = BraggSimulator::new(DriftModel::none(), 3);
        let patches = sim.scan(0, 6);
        let (x, y) = to_training_tensors(&patches);
        assert_eq!(x.shape(), &[6, 1, 15, 15]);
        assert_eq!(y.shape(), &[6, 2]);
        // Labels normalized to [0, 1].
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn series_covers_all_scans() {
        let sim = BraggSimulator::new(DriftModel::none(), 5);
        let series = sim.series(4, 3);
        assert_eq!(series.len(), 4);
        for (i, (scan, patches)) in series.iter().enumerate() {
            assert_eq!(*scan, i);
            assert_eq!(patches.len(), 3);
            assert!(patches.iter().all(|p| p.scan == i));
        }
    }
}
