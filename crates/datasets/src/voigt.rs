//! The pseudo-Voigt peak profile and the conventional labeling pipeline.
//!
//! HEDM analysis determines the sub-pixel center of mass of each
//! diffraction peak by fitting a pseudo-Voigt profile (Sharma et al., the
//! paper's ref [50]); the paper's "conventional method" baseline runs the
//! MIDAS implementation of that fit on 80 or 1440 cores. This module
//! provides:
//!
//! * [`PeakParams`] / [`render`] — the forward model (also used by the
//!   Bragg data generator);
//! * [`fit_peak`] — a multi-start Gauss–Newton fitter recovering the peak
//!   center from pixels, deliberately configured at MIDAS-like rigor so
//!   the conventional path carries a realistic compute cost;
//! * [`label_batch`] — rayon-parallel batch labeling (the per-node
//!   parallelism MIDAS uses);
//! * [`ClusterModel`] — Amdahl-style extrapolation of measured per-peak
//!   cost to arbitrary core counts, documenting the Voigt-80/Voigt-1440
//!   substitution (we do not have an 18-node cluster).

use fairdms_tensor::rng::TensorRng;
use rayon::prelude::*;

/// Parameters of one pseudo-Voigt peak on a square patch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeakParams {
    /// Peak amplitude above background.
    pub amplitude: f32,
    /// Center x in pixel coordinates.
    pub cx: f32,
    /// Center y in pixel coordinates.
    pub cy: f32,
    /// Gaussian/Lorentzian width parameter (pixels).
    pub width: f32,
    /// Lorentzian fraction η ∈ [0, 1].
    pub eta: f32,
    /// Constant background level.
    pub background: f32,
}

impl PeakParams {
    /// Profile value at squared radius `r2` from the center.
    #[inline]
    pub fn profile(&self, r2: f32) -> f32 {
        let w2 = self.width * self.width;
        let gaussian = (-r2 / (2.0 * w2)).exp();
        let lorentzian = 1.0 / (1.0 + r2 / w2);
        self.background + self.amplitude * (self.eta * lorentzian + (1.0 - self.eta) * gaussian)
    }

    /// Intensity at pixel `(x, y)`.
    #[inline]
    pub fn intensity(&self, x: f32, y: f32) -> f32 {
        let dx = x - self.cx;
        let dy = y - self.cy;
        self.profile(dx * dx + dy * dy)
    }
}

/// Renders a `size`×`size` patch (row-major) with optional Gaussian pixel
/// noise of standard deviation `noise_std`.
pub fn render(params: &PeakParams, size: usize, noise_std: f32, rng: &mut TensorRng) -> Vec<f32> {
    assert!(size > 0, "patch size must be positive");
    let mut out = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            let mut v = params.intensity(x as f32, y as f32);
            if noise_std > 0.0 {
                v += rng.next_normal_with(0.0, noise_std);
            }
            out.push(v);
        }
    }
    out
}

/// Fit configuration. `MIDAS_GRADE` mirrors the rigor of the conventional
/// pipeline; `QUICK` is a light verification fit.
#[derive(Clone, Copy, Debug)]
pub struct FitConfig {
    /// Independent multi-start restarts (jittered initial centers).
    pub restarts: usize,
    /// Gauss–Newton iterations per restart.
    pub iterations: usize,
    /// Levenberg damping added to the normal equations.
    pub damping: f32,
}

impl FitConfig {
    /// Rigor comparable to the conventional MIDAS pipeline: multi-start
    /// with full iteration budget (this is the expensive path of Fig 15).
    pub const MIDAS_GRADE: FitConfig = FitConfig {
        restarts: 6,
        iterations: 60,
        damping: 1e-3,
    };

    /// A fast single-start fit for verification and tests.
    pub const QUICK: FitConfig = FitConfig {
        restarts: 1,
        iterations: 25,
        damping: 1e-3,
    };
}

/// Result of a pseudo-Voigt fit.
#[derive(Clone, Copy, Debug)]
pub struct FittedPeak {
    /// Recovered parameters.
    pub params: PeakParams,
    /// Final sum of squared residuals.
    pub residual: f32,
    /// Total Gauss–Newton iterations executed (across restarts).
    pub iterations: usize,
}

impl FittedPeak {
    /// The label the downstream ML task consumes: the fitted center.
    pub fn center(&self) -> (f32, f32) {
        (self.params.cx, self.params.cy)
    }
}

/// Moment-based initial estimate: background from the border median,
/// center from the intensity centroid.
fn initial_guess(pixels: &[f32], size: usize) -> PeakParams {
    let mut border: Vec<f32> = Vec::with_capacity(4 * size);
    for i in 0..size {
        border.push(pixels[i]); // top row
        border.push(pixels[(size - 1) * size + i]); // bottom row
        border.push(pixels[i * size]); // left col
        border.push(pixels[i * size + size - 1]); // right col
    }
    border.sort_by(f32::total_cmp);
    let background = border[border.len() / 2];

    let mut mass = 0.0f32;
    let mut mx = 0.0f32;
    let mut my = 0.0f32;
    let mut peak = f32::NEG_INFINITY;
    for y in 0..size {
        for x in 0..size {
            let v = (pixels[y * size + x] - background).max(0.0);
            mass += v;
            mx += v * x as f32;
            my += v * y as f32;
            peak = peak.max(pixels[y * size + x]);
        }
    }
    let (cx, cy) = if mass > 0.0 {
        (mx / mass, my / mass)
    } else {
        (size as f32 / 2.0, size as f32 / 2.0)
    };
    PeakParams {
        amplitude: (peak - background).max(1e-3),
        cx,
        cy,
        width: size as f32 / 6.0,
        eta: 0.5,
        background,
    }
}

const N_PARAMS: usize = 6;

fn params_to_vec(p: &PeakParams) -> [f32; N_PARAMS] {
    [p.amplitude, p.cx, p.cy, p.width, p.eta, p.background]
}

fn vec_to_params(v: &[f32; N_PARAMS], size: usize) -> PeakParams {
    PeakParams {
        amplitude: v[0].max(1e-4),
        cx: v[1].clamp(0.0, size as f32 - 1.0),
        cy: v[2].clamp(0.0, size as f32 - 1.0),
        width: v[3].clamp(0.3, size as f32),
        eta: v[4].clamp(0.0, 1.0),
        background: v[5],
    }
}

/// Sum of squared residuals of a parameter vector against the pixels.
fn residual_of(params: &PeakParams, pixels: &[f32], size: usize) -> f32 {
    let mut acc = 0.0f32;
    for y in 0..size {
        for x in 0..size {
            let d = params.intensity(x as f32, y as f32) - pixels[y * size + x];
            acc += d * d;
        }
    }
    acc
}

/// Fits a pseudo-Voigt profile with damped Gauss–Newton and numerical
/// Jacobians, multi-started from jittered initial centers.
#[allow(clippy::needless_range_loop)] // triangular JᵀJ assembly
pub fn fit_peak(pixels: &[f32], size: usize, cfg: &FitConfig) -> FittedPeak {
    assert_eq!(pixels.len(), size * size, "pixel count must be size²");
    assert!(
        cfg.restarts >= 1 && cfg.iterations >= 1,
        "degenerate fit config"
    );
    let base = initial_guess(pixels, size);
    let mut rng = TensorRng::seeded(0xF17);

    let mut best: Option<(PeakParams, f32)> = None;
    let mut total_iters = 0usize;
    for restart in 0..cfg.restarts {
        let mut v = params_to_vec(&base);
        if restart > 0 {
            v[1] += rng.next_normal_with(0.0, 1.0);
            v[2] += rng.next_normal_with(0.0, 1.0);
            v[3] *= 1.0 + rng.next_normal_with(0.0, 0.2);
        }
        let mut cur = vec_to_params(&v, size);
        let mut cur_res = residual_of(&cur, pixels, size);

        for _ in 0..cfg.iterations {
            total_iters += 1;
            // Numerical Jacobian via central differences, normal equations
            // JᵀJ δ = Jᵀ r with Levenberg damping.
            let mut jtj = [[0.0f32; N_PARAMS]; N_PARAMS];
            let mut jtr = [0.0f32; N_PARAMS];
            let v_cur = params_to_vec(&cur);
            let eps = 1e-3f32;

            // Per-pixel residual and derivative accumulation.
            let mut deriv_fields = Vec::with_capacity(N_PARAMS);
            for k in 0..N_PARAMS {
                let mut vp = v_cur;
                vp[k] += eps;
                let mut vm = v_cur;
                vm[k] -= eps;
                let pp = vec_to_params(&vp, size);
                let pm = vec_to_params(&vm, size);
                let mut field = Vec::with_capacity(size * size);
                for y in 0..size {
                    for x in 0..size {
                        let d = (pp.intensity(x as f32, y as f32)
                            - pm.intensity(x as f32, y as f32))
                            / (2.0 * eps);
                        field.push(d);
                    }
                }
                deriv_fields.push(field);
            }
            for y in 0..size {
                for x in 0..size {
                    let idx = y * size + x;
                    let r = pixels[idx] - cur.intensity(x as f32, y as f32);
                    for a in 0..N_PARAMS {
                        jtr[a] += deriv_fields[a][idx] * r;
                        for b in a..N_PARAMS {
                            jtj[a][b] += deriv_fields[a][idx] * deriv_fields[b][idx];
                        }
                    }
                }
            }
            for a in 0..N_PARAMS {
                for b in 0..a {
                    jtj[a][b] = jtj[b][a];
                }
                jtj[a][a] += cfg.damping * (1.0 + jtj[a][a]);
            }

            let delta = match solve6(&jtj, &jtr) {
                Some(d) => d,
                None => break, // singular system: stop this restart
            };
            let mut v_next = v_cur;
            for k in 0..N_PARAMS {
                v_next[k] += delta[k];
            }
            let next = vec_to_params(&v_next, size);
            let next_res = residual_of(&next, pixels, size);
            if next_res < cur_res {
                cur = next;
                cur_res = next_res;
            } else {
                break; // no improvement: converged for this restart
            }
        }

        match &best {
            Some((_, r)) if *r <= cur_res => {}
            _ => best = Some((cur, cur_res)),
        }
    }

    let (params, residual) = best.expect("at least one restart ran");
    FittedPeak {
        params,
        residual,
        iterations: total_iters,
    }
}

/// Gaussian elimination with partial pivoting for the 6×6 normal equations.
#[allow(clippy::needless_range_loop)] // Gaussian elimination over a fixed 6x7 tableau
fn solve6(a: &[[f32; N_PARAMS]; N_PARAMS], b: &[f32; N_PARAMS]) -> Option<[f32; N_PARAMS]> {
    let mut m = [[0.0f64; N_PARAMS + 1]; N_PARAMS];
    for i in 0..N_PARAMS {
        for j in 0..N_PARAMS {
            m[i][j] = a[i][j] as f64;
        }
        m[i][N_PARAMS] = b[i] as f64;
    }
    for col in 0..N_PARAMS {
        let pivot = (col..N_PARAMS).max_by(|&x, &y| m[x][col].abs().total_cmp(&m[y][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        for row in col + 1..N_PARAMS {
            let f = m[row][col] / m[col][col];
            for k in col..=N_PARAMS {
                m[row][k] -= f * m[col][k];
            }
        }
    }
    let mut x = [0.0f32; N_PARAMS];
    for row in (0..N_PARAMS).rev() {
        let mut acc = m[row][N_PARAMS];
        for k in row + 1..N_PARAMS {
            acc -= m[row][k] * x[k] as f64;
        }
        x[row] = (acc / m[row][row]) as f32;
    }
    Some(x)
}

/// Labels a batch of patches in parallel (MIDAS's per-node parallelism).
/// Returns fitted centers in input order.
pub fn label_batch(patches: &[Vec<f32>], size: usize, cfg: &FitConfig) -> Vec<FittedPeak> {
    patches.par_iter().map(|p| fit_peak(p, size, cfg)).collect()
}

/// Amdahl-style extrapolation of labeling cost to large core counts.
///
/// MIDAS labeling is embarrassingly parallel over peaks with a small serial
/// fraction (I/O staging, result merging). The paper ran it on an 80-core
/// workstation and an 18-node/1440-core cluster; this model projects the
/// *measured* single-core per-peak cost onto those configurations so the
/// Fig 15 comparison can be regenerated anywhere.
#[derive(Clone, Copy, Debug)]
pub struct ClusterModel {
    /// Core count of the modeled machine.
    pub cores: usize,
    /// Serial fraction of the labeling job (Amdahl).
    pub serial_fraction: f64,
    /// Fixed per-job startup overhead in seconds (scheduler, staging).
    pub startup_secs: f64,
}

impl ClusterModel {
    /// The paper's 80-core workstation.
    pub fn voigt_80() -> Self {
        ClusterModel {
            cores: 80,
            serial_fraction: 5e-4,
            startup_secs: 2.0,
        }
    }

    /// The paper's 18-node, 1440-core cluster ("the highest possible
    /// parallelism supported by MIDAS"). Distributed staging costs more.
    pub fn voigt_1440() -> Self {
        ClusterModel {
            cores: 1440,
            serial_fraction: 5e-4,
            startup_secs: 10.0,
        }
    }

    /// Projected wall time to label `n_peaks` given a measured single-core
    /// per-peak cost.
    pub fn labeling_secs(&self, n_peaks: usize, per_peak_secs: f64) -> f64 {
        assert!(self.cores >= 1, "core count must be positive");
        assert!(
            (0.0..=1.0).contains(&self.serial_fraction),
            "bad serial fraction"
        );
        let work = n_peaks as f64 * per_peak_secs;
        let parallel = work * (1.0 - self.serial_fraction) / self.cores as f64;
        let serial = work * self.serial_fraction;
        self.startup_secs + serial + parallel
    }

    /// Effective speedup over a single core for a given job size.
    pub fn speedup(&self, n_peaks: usize, per_peak_secs: f64) -> f64 {
        let t1 = n_peaks as f64 * per_peak_secs;
        t1 / self.labeling_secs(n_peaks, per_peak_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak(cx: f32, cy: f32) -> PeakParams {
        PeakParams {
            amplitude: 100.0,
            cx,
            cy,
            width: 1.8,
            eta: 0.4,
            background: 10.0,
        }
    }

    #[test]
    fn render_puts_maximum_at_center() {
        let mut rng = TensorRng::seeded(0);
        let p = peak(7.0, 7.0);
        let img = render(&p, 15, 0.0, &mut rng);
        let argmax = img
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!((argmax % 15, argmax / 15), (7, 7));
        // Background level at the far corner.
        assert!((img[0] - p.intensity(0.0, 0.0)).abs() < 1e-5);
        assert!(img[0] < 20.0);
    }

    #[test]
    fn fit_recovers_noiseless_center_exactly() {
        let mut rng = TensorRng::seeded(1);
        for &(cx, cy) in &[(7.0f32, 7.0f32), (6.3, 8.1), (7.9, 5.6)] {
            let img = render(&peak(cx, cy), 15, 0.0, &mut rng);
            let fit = fit_peak(&img, 15, &FitConfig::QUICK);
            let (fx, fy) = fit.center();
            assert!(
                (fx - cx).abs() < 0.02 && (fy - cy).abs() < 0.02,
                "({cx},{cy}) fitted as ({fx},{fy})"
            );
        }
    }

    #[test]
    fn fit_tolerates_noise_with_subpixel_accuracy() {
        let mut rng = TensorRng::seeded(2);
        let mut worst = 0.0f32;
        for trial in 0..10 {
            let cx = 6.0 + (trial as f32) * 0.3;
            let cy = 8.0 - (trial as f32) * 0.25;
            let img = render(&peak(cx, cy), 15, 2.0, &mut rng);
            let fit = fit_peak(&img, 15, &FitConfig::MIDAS_GRADE);
            let (fx, fy) = fit.center();
            let err = ((fx - cx).powi(2) + (fy - cy).powi(2)).sqrt();
            worst = worst.max(err);
        }
        assert!(worst < 0.3, "worst noisy-fit error {worst} px");
    }

    #[test]
    fn midas_grade_beats_quick_on_hard_peaks() {
        // Broad, noisy, off-center peak: multi-start should not do worse.
        let mut rng = TensorRng::seeded(3);
        let hard = PeakParams {
            amplitude: 30.0,
            cx: 4.2,
            cy: 10.3,
            width: 3.2,
            eta: 0.8,
            background: 20.0,
        };
        let img = render(&hard, 15, 3.0, &mut rng);
        let quick = fit_peak(&img, 15, &FitConfig::QUICK);
        let full = fit_peak(&img, 15, &FitConfig::MIDAS_GRADE);
        assert!(full.residual <= quick.residual * 1.001);
        assert!(full.iterations >= quick.iterations);
    }

    #[test]
    fn label_batch_preserves_order() {
        let mut rng = TensorRng::seeded(4);
        let centers: Vec<(f32, f32)> = (0..8).map(|i| (5.0 + i as f32 * 0.5, 7.0)).collect();
        let patches: Vec<Vec<f32>> = centers
            .iter()
            .map(|&(cx, cy)| render(&peak(cx, cy), 15, 0.5, &mut rng))
            .collect();
        let fits = label_batch(&patches, 15, &FitConfig::QUICK);
        for (fit, &(cx, _)) in fits.iter().zip(&centers) {
            assert!((fit.center().0 - cx).abs() < 0.2);
        }
    }

    #[test]
    fn cluster_model_orders_configurations() {
        // A paper-scale labeling job: ~1 h of wall time on 80 cores.
        let n = 100_000;
        let per_peak = 2.5; // core-seconds per peak (MIDAS-grade fit)
        let t1 = n as f64 * per_peak;
        let t80 = ClusterModel::voigt_80().labeling_secs(n, per_peak);
        let t1440 = ClusterModel::voigt_1440().labeling_secs(n, per_peak);
        assert!(t1440 < t80 && t80 < t1, "t1={t1} t80={t80} t1440={t1440}");
        // The 18x bigger cluster wins by roughly an order of magnitude
        // (Fig 15a shape), not the full 18x (Amdahl + startup).
        let ratio = t80 / t1440;
        assert!((5.0..18.0).contains(&ratio), "ratio {ratio}");
        // Amdahl ceiling: speedup cannot exceed 1/serial_fraction.
        assert!(ClusterModel::voigt_1440().speedup(n, per_peak) < 1.0 / 5e-4);
        assert!(ClusterModel::voigt_80().speedup(n, per_peak) > 30.0);
    }

    #[test]
    fn cluster_startup_dominates_tiny_jobs() {
        let m = ClusterModel::voigt_1440();
        let t_small = m.labeling_secs(10, 0.001);
        assert!(t_small >= m.startup_secs);
    }

    #[test]
    #[should_panic(expected = "size²")]
    fn fit_rejects_wrong_pixel_count() {
        fit_peak(&[0.0; 10], 15, &FitConfig::QUICK);
    }
}
