//! Property tests for the synthetic instruments and the pseudo-Voigt
//! labeling pipeline.

use fairdms_datasets::bragg::{BraggPatch, BraggSimulator, DriftModel};
use fairdms_datasets::cookiebox::{CookieBoxImage, CookieBoxSimulator};
use fairdms_datasets::tomo::{TomoFrame, TomoSimulator};
use fairdms_datasets::voigt::{fit_peak, render, FitConfig, PeakParams};
use fairdms_tensor::rng::TensorRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn voigt_fit_recovers_random_centers(
        cx_off in -2.5f32..2.5,
        cy_off in -2.5f32..2.5,
        width in 1.0f32..2.6,
        eta in 0.0f32..1.0,
        seed in 0u64..300,
    ) {
        let params = PeakParams {
            amplitude: 90.0,
            cx: 7.0 + cx_off,
            cy: 7.0 + cy_off,
            width,
            eta,
            background: 12.0,
        };
        let mut rng = TensorRng::seeded(seed);
        let img = render(&params, 15, 0.8, &mut rng);
        let fit = fit_peak(&img, 15, &FitConfig::QUICK);
        let (fx, fy) = fit.center();
        let err = ((fx - params.cx).powi(2) + (fy - params.cy).powi(2)).sqrt();
        prop_assert!(err < 0.35, "center error {err} px (true {:?})", (params.cx, params.cy));
    }

    #[test]
    fn bragg_documents_roundtrip(scan in 0usize..100, n in 1usize..6, seed in 0u64..300) {
        let sim = BraggSimulator::new(DriftModel::none(), seed);
        for p in sim.scan(scan, n) {
            let back = BraggPatch::from_document(&p.to_document()).unwrap();
            prop_assert_eq!(back.pixels, p.pixels);
            prop_assert_eq!(back.scan, p.scan);
            prop_assert!((back.center.0 - p.center.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cookiebox_documents_roundtrip(scan in 0usize..50, seed in 0u64..200) {
        let sim = CookieBoxSimulator::new(32, seed);
        let img = sim.acquire(scan, 0);
        let back = CookieBoxImage::from_document(&img.to_document()).unwrap();
        prop_assert_eq!(back.histogram, img.histogram);
        prop_assert_eq!(back.pdf, img.pdf);
    }

    #[test]
    fn tomo_documents_roundtrip(index in 0usize..50, seed in 0u64..200) {
        let sim = TomoSimulator::new(32, seed);
        let f = sim.frame(index);
        let back = TomoFrame::from_document(&f.to_document()).unwrap();
        prop_assert_eq!(back.pixels, f.pixels);
        prop_assert_eq!(back.index, f.index);
    }

    #[test]
    fn drift_width_is_monotone_after_onset(
        deform_start in 2usize..10,
        rate_pct in 1u32..12,
        seed in 0u64..200,
    ) {
        let drift = DriftModel {
            deform_start,
            deform_rate: rate_pct as f32 / 100.0,
            config_change: usize::MAX,
        };
        let sim = BraggSimulator::new(drift, seed);
        let mean_width = |scan: usize| -> f32 {
            let ps = sim.scan(scan, 30);
            ps.iter().map(|p| p.params.width).sum::<f32>() / ps.len() as f32
        };
        // Before the onset, width is stationary (same distribution).
        let w0 = mean_width(0);
        let w_at = mean_width(deform_start);
        prop_assert!((w0 - w_at).abs() < 0.35, "pre-onset drift: {w0} vs {w_at}");
        // After onset, width increases with scan index.
        let w_late = mean_width(deform_start + 10);
        let w_later = mean_width(deform_start + 20);
        prop_assert!(w_late > w_at, "{w_late} !> {w_at}");
        prop_assert!(w_later > w_late, "{w_later} !> {w_late}");
    }

    #[test]
    fn cookiebox_pdf_rows_always_normalize(scan in 0usize..80, shot in 0usize..5, seed in 0u64..100) {
        let sim = CookieBoxSimulator::new(32, seed);
        let img = sim.acquire(scan, shot);
        for row in 0..32 {
            let s: f32 = img.pdf[row * 32..(row + 1) * 32].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-3, "row {row} sums to {s}");
        }
    }

    #[test]
    fn patch_labels_stay_inside_the_patch(scan in 0usize..40, seed in 0u64..200) {
        let sim = BraggSimulator::new(DriftModel::paper_like(5, 20), seed);
        for p in sim.scan(scan, 20) {
            prop_assert!(p.center.0 >= 0.0 && p.center.0 <= 14.0);
            prop_assert!(p.center.1 >= 0.0 && p.center.1 <= 14.0);
            let (nx, ny) = p.normalized_center();
            prop_assert!((0.0..=1.0).contains(&nx) && (0.0..=1.0).contains(&ny));
        }
    }
}
