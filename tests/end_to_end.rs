//! End-to-end integration: the full fairDMS pipeline over synthetic HEDM
//! data — system-plane training, ingestion, pseudo-labeling, zoo
//! recommendation, fine-tuning, and the degradation monitor — crossing
//! every workspace crate.

use fairdms_core::embedding::{ByolEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig, TrainStrategy};
use fairdms_datasets::bragg::{to_training_tensors, BraggPatch, BraggSimulator, DriftModel};
use fairdms_tensor::Tensor;

const SIDE: usize = 15;

fn flat(patches: &[BraggPatch]) -> (Tensor, Tensor) {
    let (x4, y) = to_training_tensors(patches);
    let n = x4.shape()[0];
    (x4.reshape(&[n, SIDE * SIDE]), y)
}

fn quick_embed() -> EmbedTrainConfig {
    EmbedTrainConfig {
        epochs: 4,
        batch_size: 64,
        lr: 2e-3,
        ..EmbedTrainConfig::default()
    }
}

fn build_trainer(seed: u64) -> (RapidTrainer, BraggSimulator) {
    let sim = BraggSimulator::new(DriftModel::none(), seed);
    let history: Vec<BraggPatch> = (0..2).flat_map(|s| sim.scan(s, 120)).collect();
    let (hx, hy) = flat(&history);
    let mut fairds = FairDS::in_memory(
        Box::new(ByolEmbedder::new(SIDE, 64, 16, seed)),
        FairDsConfig {
            k: Some(10),
            seed,
            ..FairDsConfig::default()
        },
    );
    fairds.train_system(&hx, &quick_embed());
    fairds.ingest_labeled(&hx, &hy, 0);
    let mut cfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    cfg.train.epochs = 6;
    cfg.seed = seed;
    (RapidTrainer::new(fairds, ModelManager::new(0.9), cfg), sim)
}

#[test]
fn full_pipeline_update_reuses_labels_and_registers_models() {
    let (mut trainer, sim) = build_trainer(100);
    let (x1, _) = flat(&sim.scan(5, 80));
    let (_, r1) = trainer.update_model(&x1, |_| vec![0.5, 0.5], 5);
    // History is in-distribution: nearly all labels should be reused.
    assert!(
        r1.label_stats.reuse_fraction() > 0.7,
        "reuse fraction {}",
        r1.label_stats.reuse_fraction()
    );
    assert!(r1.foundation.is_none(), "first update has an empty zoo");
    assert_eq!(trainer.zoo.len(), 1);

    let (x2, _) = flat(&sim.scan(6, 80));
    let (_, r2) = trainer.update_model(&x2, |_| vec![0.5, 0.5], 6);
    assert_eq!(r2.foundation, Some(0), "second update fine-tunes");
    assert!(r2.divergence.unwrap() < 0.5, "same distribution ⇒ low JSD");
    assert_eq!(trainer.zoo.len(), 2);
    // The store grew by both updates' ingestions.
    assert_eq!(trainer.fairds.store().len(), 240 + 80 + 80);
}

#[test]
fn fine_tune_starts_better_than_scratch_on_similar_data() {
    let (mut trainer, sim) = build_trainer(200);
    // Train a decent foundation and register it.
    let (x0, y0) = flat(&sim.scan(3, 160));
    let pdf0 = trainer.fairds.dataset_pdf(&x0);
    let saved = trainer.config().train.clone();
    trainer.config_mut().train.epochs = 20;
    let (net, _, _, _) = trainer.fit_strategy(&x0, &y0, &pdf0, TrainStrategy::Scratch);
    trainer.config_mut().train = saved;
    trainer.zoo.add_model(
        "foundation",
        ArchSpec::BraggNN { patch: SIDE },
        &net,
        pdf0,
        3,
    );

    let (x1, y1) = flat(&sim.scan(4, 120));
    let pdf1 = trainer.fairds.dataset_pdf(&x1);
    let (_, ft, found, _) = trainer.fit_strategy(&x1, &y1, &pdf1, TrainStrategy::FineTuneBest);
    let (_, sc, _, _) = trainer.fit_strategy(&x1, &y1, &pdf1, TrainStrategy::Scratch);
    assert_eq!(found, Some(0));
    assert!(
        ft.curve[0].val_loss < sc.curve[0].val_loss,
        "fine-tune epoch-0 loss {} should beat scratch {}",
        ft.curve[0].val_loss,
        sc.curve[0].val_loss
    );
}

#[test]
fn drifted_scan_lowers_certainty_monotonically() {
    let (trainer, _) = build_trainer(300);
    let drift_sim = BraggSimulator::new(
        DriftModel {
            deform_start: 0,
            deform_rate: 0.12,
            config_change: usize::MAX,
        },
        300,
    );
    let (x_near, _) = flat(&drift_sim.scan(1, 80));
    let (x_far, _) = flat(&drift_sim.scan(20, 80));
    let c_near = trainer.fairds.certainty(&x_near);
    let c_far = trainer.fairds.certainty(&x_far);
    assert!(
        c_far <= c_near + 1e-9,
        "certainty should not increase with drift: near {c_near}, far {c_far}"
    );
}

#[test]
fn pdf_matched_lookup_returns_requested_count() {
    let (trainer, sim) = build_trainer(400);
    let (x, _) = flat(&sim.scan(7, 60));
    let pdf = trainer.fairds.dataset_pdf(&x);
    let docs = trainer.fairds.lookup_matching(&pdf, 100);
    assert_eq!(docs.len(), 100);
    // All returned documents carry pixels, embedding, cluster, and label.
    for d in &docs {
        assert!(d.get_f32s("pixels").is_some());
        assert!(d.get_f32s("embedding").is_some());
        assert!(d.get_i64("cluster").is_some());
        assert!(d.get_f32s("label").is_some());
    }
}
