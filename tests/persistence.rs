//! Cross-crate durability test: a fairDMS deployment survives a "restart".
//!
//! Session 1 trains the system plane, ingests labeled history, trains and
//! registers a model. The store and Zoo are snapshotted to disk. Session 2
//! restores both and must answer lookups and recommendations identically —
//! the property that makes the MongoDB stand-in honest about the paper's
//! deployment (a beamline's corpus and model Zoo outlive one acquisition
//! session).

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::{ModelManager, ModelZoo};
use fairdms_core::models::ArchSpec;
use fairdms_datastore::{Collection, RawCodec};
use fairdms_nn::layers::Mode;
use fairdms_tensor::rng::TensorRng;
use fairdms_tensor::Tensor;
use std::sync::Arc;

const SIDE: usize = 8;

fn blob_images(per_mode: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seeded(seed);
    let centers = [(2.0f32, 2.0f32), (5.0, 5.0)];
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for (cy, cx) in centers {
        for _ in 0..per_mode {
            for y in 0..SIDE {
                for x in 0..SIDE {
                    let r2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                    data.push(8.0 * (-r2 / 2.0).exp() + rng.next_normal_with(0.0, 0.1));
                }
            }
            labels.push(cx / SIDE as f32);
            labels.push(cy / SIDE as f32);
        }
    }
    (
        Tensor::from_vec(data, &[per_mode * 2, SIDE * SIDE]),
        Tensor::from_vec(labels, &[per_mode * 2, 2]),
    )
}

#[test]
fn beamline_session_survives_restart() {
    let dir = std::env::temp_dir().join("fairdms-restart-test");
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("corpus.fdms");
    let zoo_path = dir.join("zoo.fdms");

    let arch = ArchSpec::BraggNN { patch: SIDE };
    let (x, y) = blob_images(25, 1);
    let probe = {
        let (px, _) = blob_images(6, 2);
        px
    };

    // ---------------- Session 1: build state, persist. ----------------
    let (pdf_before, lookup_before, rank_before, model_out_before) = {
        let store = Arc::new(Collection::new("corpus", Arc::new(RawCodec)));
        let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 32, 8, 3);
        let mut fairds = FairDS::new(
            Box::new(embedder),
            Arc::clone(&store),
            FairDsConfig {
                k: Some(2),
                seed: 3,
                ..FairDsConfig::default()
            },
        );
        fairds.train_system(
            &x,
            &EmbedTrainConfig {
                epochs: 5,
                batch_size: 16,
                lr: 2e-3,
                ..EmbedTrainConfig::default()
            },
        );
        fairds.ingest_labeled(&x, &y, 0);

        let mut zoo = ModelZoo::new();
        let pdf = fairds.dataset_pdf(&probe);
        let mut net = arch.build(9);
        let out = net.forward(
            &probe.reshape(&[probe.shape()[0], 1, SIDE, SIDE]),
            Mode::Eval,
        );
        zoo.add_model("session1-model", arch, &net, pdf.clone(), 0);

        // Persist the corpus and the zoo.
        store.save_to(&store_path).unwrap();
        let zoo_coll = Collection::new("zoo", Arc::new(RawCodec));
        zoo.save_to_collection(&zoo_coll);
        zoo_coll.save_to(&zoo_path).unwrap();

        let lookup: Vec<u64> = store.find_by("cluster", 0);
        let rank = ModelManager::default().rank(&zoo, &pdf).unwrap().ranked;
        (pdf, lookup, rank, out)
    };
    // Session 1 state fully dropped here.

    // ---------------- Session 2: restore, verify. ----------------------
    let store = Arc::new(
        Collection::load_from(Arc::new(RawCodec), &store_path)
            .unwrap()
            .unwrap(),
    );
    assert_eq!(store.len(), 50);
    assert!(store.has_index("cluster"));
    assert_eq!(store.find_by("cluster", 0), lookup_before);

    let zoo_coll = Collection::load_from(Arc::new(RawCodec), &zoo_path)
        .unwrap()
        .unwrap();
    let zoo = ModelZoo::load_from_collection(&zoo_coll);
    assert_eq!(zoo.len(), 1);
    assert_eq!(zoo.get(0).unwrap().name, "session1-model");

    // The restored checkpoint computes bit-identical outputs.
    let mut net = zoo.instantiate(0, 42).unwrap();
    let out = net.forward(
        &probe.reshape(&[probe.shape()[0], 1, SIDE, SIDE]),
        Mode::Eval,
    );
    assert!(fairdms_tensor::allclose(&out, &model_out_before, 1e-6));

    // Ranking is preserved up to f32 PDF storage precision.
    let rank = ModelManager::default()
        .rank(&zoo, &pdf_before)
        .unwrap()
        .ranked;
    assert_eq!(rank.len(), rank_before.len());
    for ((ia, da), (ib, db)) in rank.iter().zip(&rank_before) {
        assert_eq!(ia, ib);
        assert!((da - db).abs() < 1e-6);
    }

    // The restored store keeps serving the data service: a fresh fairDS
    // can retrain its system plane from the persisted corpus alone.
    let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 32, 8, 4);
    let mut fairds = FairDS::new(
        Box::new(embedder),
        Arc::clone(&store),
        FairDsConfig {
            k: Some(2),
            seed: 4,
            ..FairDsConfig::default()
        },
    );
    fairds.retrain_system(
        &probe,
        &EmbedTrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 2e-3,
            ..EmbedTrainConfig::default()
        },
    );
    let (labels, stats) = fairds.pseudo_label(&probe, 1.0, |_| vec![9.0, 9.0]);
    assert_eq!(labels.shape(), &[12, 2]);
    assert!(
        stats.reused > 0,
        "restored corpus must serve label reuse: {stats:?}"
    );

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&zoo_path).ok();
}
