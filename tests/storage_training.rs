//! Integration: training reads flow through the real storage stack —
//! samples stored under each codec, fetched by the multi-worker loader,
//! and consumed by a real training loop. All three backends must deliver
//! bit-identical data for raw/blosc (lossless) and f32-identical data for
//! pickle (f64 promotion is exact for f32 values).

use fairdms_dataloader::{DataLoader, DataLoaderConfig, Dataset};
use fairdms_datasets::bragg::{BraggPatch, BraggSimulator, DriftModel};
use fairdms_datastore::netsim::{paper_backends, RemoteStore, SampleStore};
use fairdms_datastore::DocId;
use std::sync::Arc;

/// A dataset serving decoded samples straight from a storage backend.
struct StoreDataset {
    store: RemoteStore,
    ids: Vec<DocId>,
}

impl Dataset for StoreDataset {
    type Item = Vec<f32>;
    fn len(&self) -> usize {
        self.ids.len()
    }
    fn get(&self, index: usize) -> Vec<f32> {
        let (doc, _) = self.store.fetch(self.ids[index]).expect("sample exists");
        doc.get_f32s("pixels").expect("pixels field").to_vec()
    }
}

fn patches(n: usize) -> Vec<BraggPatch> {
    BraggSimulator::new(DriftModel::none(), 9).scan(0, n)
}

#[test]
fn all_backends_roundtrip_identical_training_data() {
    let data = patches(64);
    let mut per_backend: Vec<Vec<Vec<f32>>> = Vec::new();
    for store in paper_backends() {
        let ids: Vec<DocId> = data.iter().map(|p| store.put(&p.to_document())).collect();
        let ds = StoreDataset { store, ids };
        let dl = DataLoader::new(
            Arc::new(ds),
            DataLoaderConfig {
                batch_size: 16,
                num_workers: 4,
                prefetch_batches: 2,
                drop_last: false,
            },
        );
        let fetched: Vec<Vec<f32>> = dl.epoch((0..64).collect()).flatten().collect();
        assert_eq!(fetched.len(), 64);
        per_backend.push(fetched);
    }
    // Every backend returns exactly the generated pixels, in order.
    for backend in &per_backend {
        for (got, want) in backend.iter().zip(&data) {
            assert_eq!(got, &want.pixels);
        }
    }
}

#[test]
fn payload_ordering_matches_the_paper() {
    // Pickle > raw(NFS) > blosc for smooth scientific images.
    let data = patches(32);
    let mut sizes = std::collections::HashMap::new();
    for store in paper_backends() {
        for p in &data {
            store.put(&p.to_document());
        }
        sizes.insert(store.label(), store.mean_payload_bytes());
    }
    assert!(sizes["Pickle"] > sizes["NFS"], "{sizes:?}");
    assert!(sizes["Blosc"] < sizes["NFS"], "{sizes:?}");
}

#[test]
fn indexed_store_supports_concurrent_training_reads_and_updates() {
    // Writers append new scans while readers stream batches: the mixed
    // workload the paper's Data Store requirements (iv)+(v) describe.
    let store = Arc::new(RemoteStore::mongo_blosc());
    store.collection().create_index("scan");
    let initial = patches(64);
    let ids: Vec<DocId> = initial
        .iter()
        .map(|p| store.put(&p.to_document()))
        .collect();

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let extra = BraggSimulator::new(DriftModel::none(), 77).scan(1, 64);
            for p in &extra {
                store.put(&p.to_document());
            }
        })
    };
    // Concurrent reads of the initial ids must all succeed.
    let reader = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for &id in &ids {
                let (doc, timing) = store.fetch(id).expect("fetch during writes");
                assert_eq!(doc.get_f32s("pixels").unwrap().len(), 15 * 15);
                assert!(timing.total_secs() > 0.0);
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    assert_eq!(store.len(), 128);
    assert_eq!(store.collection().find_by("scan", 1).len(), 64);
}
