//! Integration: the orchestration stack (flows + executor + transfers)
//! driving fairDMS service calls, mirroring the paper's Globus Flows +
//! funcX + Globus transfer deployment (§III-C).

use fairdms_flows::{Endpoint, Flow, FuncExecutor, StepOutcome, TransferService};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn model_update_flow_attributes_time_to_each_step() {
    // A miniature end-to-end flow: transfer data → label → train →
    // transfer model back, with realistic step dependencies.
    let transfers = Arc::new(TransferService::new());
    let beamline = Endpoint::new("beamline");
    let hpc = Endpoint::new("hpc");
    transfers.set_route(&beamline, &hpc, 0.05, 10.0);

    let t1 = Arc::clone(&transfers);
    let (b1, h1) = (beamline.clone(), hpc.clone());
    let t2 = Arc::clone(&transfers);
    let (b2, h2) = (beamline.clone(), hpc.clone());

    let flow = Flow::new()
        .step("transfer-data", &[], move |_| {
            let rec = t1.transfer(&b1, &h1, 500_000_000); // 500 MB scan
            Ok(StepOutcome::virtual_time(rec.virtual_secs))
        })
        .step("label", &["transfer-data"], |_| {
            Ok(StepOutcome::none().with_output("n_labels", 1000.0))
        })
        .step("train", &["label"], |ctx| {
            assert_eq!(ctx["n_labels"], 1000.0);
            Ok(StepOutcome::virtual_time(12.0).with_output("val_loss", 0.003))
        })
        .step("transfer-model", &["train"], move |_| {
            let rec = t2.transfer(&h2, &b2, 2_000_000); // checkpoint back
            Ok(StepOutcome::virtual_time(rec.virtual_secs))
        });

    let report = flow.run().expect("flow succeeds");
    assert_eq!(report.steps.len(), 4);
    assert_eq!(report.context["val_loss"], 0.003);
    // End-to-end ≥ data transfer (0.45s) + train (12s) + model transfer.
    assert!(
        report.end_to_end_secs() > 12.4,
        "{}",
        report.end_to_end_secs()
    );
    assert_eq!(transfers.log().len(), 2);
    assert_eq!(transfers.total_bytes(), 502_000_000);
}

#[test]
fn executor_runs_system_plane_functions_in_parallel() {
    let executor = FuncExecutor::new(4);
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&calls);
    executor.register("embed_shard", move |args| {
        c.fetch_add(1, Ordering::SeqCst);
        // Pretend to embed a shard: return its id and a fake norm.
        Ok(vec![args[0], args[0] * 0.5])
    });
    let handles: Vec<_> = (0..16)
        .map(|i| executor.submit("embed_shard", &[i as f64]).unwrap())
        .collect();
    let mut seen = Vec::new();
    for h in handles {
        let out = h.wait().unwrap();
        assert_eq!(out[1], out[0] * 0.5);
        seen.push(out[0] as usize);
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..16).collect::<Vec<_>>());
    assert_eq!(calls.load(Ordering::SeqCst), 16);
}

#[test]
fn flow_retry_recovers_flaky_transfer() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    let flow = Flow::new()
        .with_retries(2)
        .step("flaky-transfer", &[], move |_| {
            if a.fetch_add(1, Ordering::SeqCst) == 0 {
                Err("connection reset".into())
            } else {
                Ok(StepOutcome::virtual_time(1.0))
            }
        });
    let report = flow.run().expect("retry should recover");
    assert_eq!(report.step("flaky-transfer").unwrap().attempts, 2);
}
