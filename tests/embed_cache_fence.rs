//! Generation fencing of the data-reuse plane (DESIGN.md §8).
//!
//! The dangerous failure mode of an embedding memo table is serving an
//! embedding computed by a *replaced* embedder: cluster assignments,
//! PDFs and pseudo-labels would silently mix two incompatible geometric
//! spaces. These tests pin the fence from both ends:
//!
//! * core level — a retrain publication must atomically invalidate every
//!   pre-publication entry (new snapshot reads are bit-identical to the
//!   new embedder, never the old one), while *old* snapshots still held
//!   by readers keep answering with their own frozen models;
//! * service level — a completed `UpdateModel`-triggered (and an
//!   ingest-triggered) system retrain must flip the read plane onto the
//!   new generation before any post-publication read can observe a
//!   cached pre-publication embedding.

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_service::server::{DmsServer, DmsServerConfig};
use fairdms_tensor::rng::TensorRng;
use fairdms_tensor::Tensor;

const SIDE: usize = 8;
const DIM: usize = SIDE * SIDE;

fn blob_images(per_mode: usize, n_modes: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seeded(seed);
    let centers = [(2.0f32, 2.0f32), (5.0, 5.0), (2.0, 5.0), (5.0, 2.0)];
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for m in 0..n_modes {
        let (cy, cx) = centers[m % centers.len()];
        for _ in 0..per_mode {
            for y in 0..SIDE {
                for x in 0..SIDE {
                    let r2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                    data.push(8.0 * (-r2 / 2.0).exp() + rng.next_normal_with(0.0, 0.1));
                }
            }
            labels.push(cx / SIDE as f32);
            labels.push(cy / SIDE as f32);
        }
    }
    (
        Tensor::from_vec(data, &[per_mode * n_modes, DIM]),
        Tensor::from_vec(labels, &[per_mode * n_modes, 2]),
    )
}

fn embed_cfg() -> EmbedTrainConfig {
    EmbedTrainConfig {
        epochs: 4,
        batch_size: 16,
        lr: 2e-3,
        ..EmbedTrainConfig::default()
    }
}

#[test]
fn retrain_publication_fences_cached_embeddings() {
    let (x, y) = blob_images(20, 2, 40);
    let embedder = AutoencoderEmbedder::new(DIM, 32, 8, 41);
    let mut ds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(2),
            ..FairDsConfig::default()
        },
    );
    ds.train_system(&x, &embed_cfg());
    ds.ingest_labeled(&x, &y, 0);
    let snap_a = ds.snapshot().expect("trained");

    // Warm the cache with generation-A embeddings of the stored batch
    // *and* of a transient batch that is neither stored nor part of the
    // upcoming retrain (so the O(copy) install's bulk warm cannot replace
    // its entries — they stay resident under generation A).
    let z_a = snap_a.embed_cached(&x);
    assert_eq!(z_a, snap_a.embedder().embed(&x), "gen-A cached == direct");
    let (x_extra, _) = blob_images(6, 2, 43);
    let z_extra_a = snap_a.embed_cached(&x_extra);
    let warmed = snap_a.embed_cache().stats();
    assert!(warmed.misses > 0, "warm pass must have installed entries");

    // Retrain: new embedder, new snapshot, same shared cache. The O(copy)
    // install bulk-warms the new generation with the rows the training
    // job embedded (the captured store + the fresh trigger batch).
    let (fresh, _) = blob_images(10, 2, 42);
    ds.retrain_system(&fresh, &embed_cfg());
    let snap_b = ds.snapshot().expect("retrained");
    assert!(snap_b.version() > snap_a.version());

    // The poisoning scenario, warmed flavor: the stored batch's entries
    // were *replaced* by the install's warm pass — reads through the new
    // snapshot must serve the new embedder's output, bit-for-bit.
    let z_b = snap_b.embed_cached(&x);
    assert_eq!(
        z_b,
        snap_b.embedder().embed(&x),
        "post-publication reads must never serve pre-publication cache entries"
    );
    assert_ne!(
        z_a, z_b,
        "sanity: the retrain actually changed the embedding space"
    );
    // The poisoning scenario, resident flavor: the transient batch still
    // sits in the table under generation A. The fence must find those
    // keys, refuse them, and recompute under the new embedder.
    let stale_before = snap_b.embed_cache().stats().stale_generation;
    let z_extra_b = snap_b.embed_cached(&x_extra);
    assert_eq!(
        z_extra_b,
        snap_b.embedder().embed(&x_extra),
        "resident gen-A entries must be refused, not served"
    );
    assert!(
        snap_b.embed_cache().stats().stale_generation > stale_before,
        "the generation fence should have intercepted the resident stale entries"
    );
    assert_ne!(z_extra_a, z_extra_b, "sanity: geometry changed");

    // A reader still holding the old snapshot keeps its frozen geometry:
    // recomputation under generation A matches what it saw before the
    // retrain, even though its inserts are now rejected.
    let z_a_again = snap_a.embed_cached(&x);
    assert_eq!(z_a_again, z_a, "old snapshots stay frozen after the fence");
}

/// Trigger calibration mirrors `service_integration.rs`: measured
/// certainty is ~1.0 on in-distribution blobs and ~0.50 on unseen uniform
/// noise, so 0.55 sits between "drifted" and "absorbed".
const TRIGGER_THRESHOLD: f64 = 0.55;

#[test]
fn update_model_triggered_retrain_never_serves_stale_embeddings() {
    let (x, y) = blob_images(30, 3, 50);
    let noise = TensorRng::seeded(52).uniform(&[60, DIM], -1.0, 1.0);
    let embedder = AutoencoderEmbedder::new(DIM, 32, 8, 51);
    let mut fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(3),
            seed: 51,
            ..FairDsConfig::default()
        },
    );
    // Train and *calibrate* before deployment, exactly as
    // examples/service_deployment.rs does: the trigger threshold is the
    // midpoint between measured in-distribution and drifted certainty.
    fairds.train_system(&x, &embed_cfg());
    let c_in = fairds.certainty(&x);
    let c_out = fairds.certainty(&noise);
    assert!(c_out < c_in, "noise must read as drift ({c_out} vs {c_in})");
    fairds.config_mut().certainty_threshold = (c_in + c_out) / 2.0;
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 3;
    tcfg.train.batch_size = 16;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let (client, handle) = DmsServer::spawn(
        trainer,
        Box::new(|_| vec![0.5, 0.5]),
        DmsServerConfig {
            auto_retrain: true,
            retrain_embed_cfg: embed_cfg(),
            embed_cache_capacity: 1024,
            embed_cache_shards: 4,
            ..DmsServerConfig::default()
        },
    );
    client.ingest(x.clone(), y, 0).expect("prime");

    // Warm the read plane's cache with the historical batch, plus a
    // transient batch that is neither stored nor the retrain trigger —
    // its entries stay resident under generation 0 across the install's
    // bulk warm, so they exercise the fence's refuse-and-recompute path.
    let pdf_before = client.dataset_pdf(x.clone()).expect("pdf");
    let (x_extra, _) = blob_images(8, 3, 53);
    let _ = client.dataset_pdf(x_extra.clone()).expect("pdf");
    let sys_before = client.current_view().system.clone().expect("trained");
    let hits_baseline = client.metrics().expect("metrics").embed_cache;

    // Confirm the warm path actually hits before the publication.
    let _ = client.dataset_pdf(x.clone()).expect("pdf");
    let warmed = client.metrics().expect("metrics").embed_cache;
    assert!(
        warmed.hits > hits_baseline.hits,
        "repeated query must hit the cache pre-retrain ({hits_baseline:?} -> {warmed:?})"
    );

    // Drifted `UpdateModel`: the certainty monitor fires and completes an
    // *inline* retrain before the update is prepared — a new generation
    // is published under the same shared cache.
    client.update_model(noise, 1).expect("update");
    let retrains = client.metrics().expect("metrics").system_retrains;
    assert!(retrains >= 1, "drifted update must trigger the retrain");

    // Post-publication reads of the *warmed* batch: must be computed by
    // the new embedder, never assembled from pre-publication entries.
    // (The O(copy) install warmed these exact rows into the new
    // generation, so this also checks the warm path shipped the right
    // values.)
    let sys_after = client.current_view().system.clone().expect("retrained");
    assert!(sys_after.version() > sys_before.version());
    let z_cached = sys_after.embed_cached(&x);
    assert_eq!(
        z_cached,
        sys_after.embedder().embed(&x),
        "read plane served a pre-publication cached embedding after UpdateModel"
    );
    // The transient batch's gen-0 entries are still resident: the fence
    // must refuse them and recompute under the new embedder.
    let stale_before = client.metrics().expect("metrics").embed_cache;
    assert_eq!(
        sys_after.embed_cached(&x_extra),
        sys_after.embedder().embed(&x_extra),
        "resident gen-0 entries must be refused, not served"
    );
    let stats = client.metrics().expect("metrics").embed_cache;
    assert!(
        stats.stale_generation > stale_before.stale_generation,
        "the fence should have intercepted resident gen-0 entries ({stats:?})"
    );
    // The install was O(copy): captured docs shipped as copies, and the
    // installs (ingest-triggered or update-inline) never re-embedded them.
    let snap_metrics = client.metrics().expect("metrics");
    assert!(
        snap_metrics.retrain_docs_copied > 0,
        "retrain install must write captured docs back by copy"
    );

    // PDFs over the old and new planes are both valid distributions; the
    // *old* snapshot still answers with its own (frozen) geometry.
    let pdf_after = client.dataset_pdf(x.clone()).expect("pdf");
    assert_eq!(pdf_after.len(), sys_after.k());
    assert!((pdf_after.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    let pdf_old_snap = sys_before.dataset_pdf(&x);
    assert_eq!(pdf_old_snap, pdf_before, "old snapshot stays frozen");

    drop(client);
    handle.shutdown();
}

#[test]
fn ingest_triggered_async_retrain_fences_too() {
    let (x, y) = blob_images(30, 3, 60);
    let embedder = AutoencoderEmbedder::new(DIM, 32, 8, 61);
    let fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(3),
            seed: 61,
            certainty_threshold: TRIGGER_THRESHOLD,
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 2;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let (client, handle) = DmsServer::spawn(
        trainer,
        Box::new(|_| vec![0.5, 0.5]),
        DmsServerConfig {
            auto_retrain: true,
            retrain_embed_cfg: embed_cfg(),
            ..DmsServerConfig::default()
        },
    );
    client.train_system(x.clone(), embed_cfg()).expect("train");
    client.ingest(x.clone(), y.clone(), 0).expect("prime");
    let _ = client.dataset_pdf(x.clone()).expect("warm");
    let v0 = client
        .current_view()
        .system
        .as_ref()
        .expect("sys")
        .version();

    // Drifted ingest: the retrain runs on the background executor; wait
    // for the fenced installation.
    let noise = TensorRng::seeded(62).uniform(&[60, DIM], -1.0, 1.0);
    let noise_labels = Tensor::zeros(&[60, 2]);
    let (_, retrained) = client.ingest(noise, noise_labels, 1).expect("drift");
    assert!(retrained, "drifted ingest must trigger");
    while client.metrics().expect("metrics").system_retrains == 0 {
        std::thread::yield_now();
    }

    let sys = client.current_view().system.clone().expect("retrained");
    assert!(
        sys.version() > v0,
        "installation published a new generation"
    );
    assert_eq!(
        sys.embed_cached(&x),
        sys.embedder().embed(&x),
        "async retrain publication must fence the cache atomically"
    );

    // The async install ran O(copy): the captured store shipped back as
    // copies, and the noise batch — ingested *after* `prepare_retrain`
    // captured the store, i.e. mid-flight — was delta-embedded. Either
    // way, every stored doc must carry the new embedder's embedding.
    let m = client.metrics().expect("metrics");
    assert!(
        m.retrain_docs_copied > 0,
        "async install must copy captured docs ({m:?})"
    );
    assert!(
        m.retrain_docs_delta_embedded > 0,
        "mid-flight ingested docs must be delta-embedded at install"
    );
    let store = sys.store();
    for id in store.ids() {
        let doc = store.get(id).expect("doc");
        let pixels = doc.get_f32s("pixels").expect("pixels").to_vec();
        let row = Tensor::from_vec(pixels, &[1, DIM]);
        assert_eq!(
            doc.get_f32s("embedding").expect("embedding"),
            sys.embedder().embed(&row).row(0),
            "stored embeddings must be consistent with the installed plane"
        );
    }

    drop(client);
    handle.shutdown();
}
