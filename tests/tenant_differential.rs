//! Differential test for the tenant plane (DESIGN.md §14): three tenants
//! with distinct scan mixes — tomography, CookieBox, Bragg — run
//! *interleaved* through one multi-tenant TCP listener, and every reply
//! must be **bit-identical** to the same request sequence served by an
//! identically-seeded solo single-tenant deployment. That proves strict
//! isolation: nothing a tenant does (training, publication, cache fills)
//! leaks into another tenant's replies, even while they share one training
//! pool and one wire plane.
//!
//! Also pins the unknown-tenant contract: a well-formed request addressed
//! to an unregistered tenant answers `Invalid` on a live socket — the
//! connection keeps serving other tenants.

use fairdms_core::embedding::{ByolEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_datasets::bragg::{BraggSimulator, DriftModel};
use fairdms_datasets::cookiebox::CookieBoxSimulator;
use fairdms_datasets::tomo::TomoSimulator;
use fairdms_service::multi::{MultiDms, TenantSpec};
use fairdms_service::net::codec::{decode_request, encode_reply, encode_request};
use fairdms_service::net::NetServerConfig;
use fairdms_service::server::{DmsClient, DmsServer, DmsServerConfig, ServerHandle};
use fairdms_service::{PipelinedClient, Reply, Request, ServiceError, ServiceResult, TenantId};
use fairdms_tensor::Tensor;

const SIDE: usize = 15;

fn server_cfg() -> DmsServerConfig {
    DmsServerConfig {
        auto_retrain: false,
        read_pool_size: 1,
        ..DmsServerConfig::default()
    }
}

fn trainer_for(seed: u64) -> RapidTrainer {
    let fairds = FairDS::in_memory(
        Box::new(ByolEmbedder::new(SIDE, 64, 16, seed)),
        FairDsConfig {
            k: Some(4),
            seed,
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 2;
    tcfg.seed = seed;
    RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg)
}

fn spawn_solo(seed: u64) -> (DmsClient, ServerHandle) {
    DmsServer::spawn(
        trainer_for(seed),
        Box::new(|_| vec![0.5, 0.5]),
        server_cfg(),
    )
}

/// Deterministic `[n, 2]` regression labels for datasets that do not carry
/// BraggNN-shaped targets natively (tomo frames, CookieBox histograms) —
/// the differential only needs *identical* labels on both sides.
fn synth_labels(n: usize) -> Tensor {
    let mut y = Vec::with_capacity(n * 2);
    for i in 0..n {
        let t = (i as f32 + 0.5) / n as f32;
        y.push(t);
        y.push(1.0 - t);
    }
    Tensor::from_vec(y, &[n, 2])
}

/// One tenant's experiment data: flattened `[n, SIDE²]` images plus labels
/// for the history (ingested) and a follow-up scan (read/update driver).
struct ScanMix {
    history_x: Tensor,
    history_y: Tensor,
    fresh_x: Tensor,
}

/// Crops a flat `src`×`src` image to the deployment's `SIDE`² input (drops
/// trailing rows/columns). The tomo and CookieBox simulators bottom out at
/// 16² frames while the shared deployment arch takes 15².
fn crop_to_side(full: &[f32], src: usize, out: &mut Vec<f32>) {
    for row in 0..SIDE {
        out.extend_from_slice(&full[row * src..row * src + SIDE]);
    }
}

fn tomo_mix(seed: u64) -> ScanMix {
    let tomo_side = SIDE + 1;
    let sim = TomoSimulator::new(tomo_side, seed);
    let flatten = |frames: &[fairdms_datasets::tomo::TomoFrame]| {
        let mut x = Vec::with_capacity(frames.len() * SIDE * SIDE);
        for f in frames {
            crop_to_side(&f.to_f32(), tomo_side, &mut x);
        }
        Tensor::from_vec(x, &[frames.len(), SIDE * SIDE])
    };
    let history = sim.frames(48);
    let fresh = sim.frames(64);
    ScanMix {
        history_x: flatten(&history),
        history_y: synth_labels(48),
        fresh_x: flatten(&fresh[48..]),
    }
}

fn cookiebox_mix(seed: u64) -> ScanMix {
    let cb_side = SIDE + 1;
    let sim = CookieBoxSimulator::new(cb_side, seed);
    let flat = |images: &[fairdms_datasets::cookiebox::CookieBoxImage]| {
        let (x, _) = fairdms_datasets::cookiebox::to_training_tensors(images);
        let n = x.shape()[0];
        let full = x.data();
        let mut out = Vec::with_capacity(n * SIDE * SIDE);
        for i in 0..n {
            crop_to_side(
                &full[i * cb_side * cb_side..(i + 1) * cb_side * cb_side],
                cb_side,
                &mut out,
            );
        }
        Tensor::from_vec(out, &[n, SIDE * SIDE])
    };
    let history: Vec<_> = (0..2).flat_map(|s| sim.scan(s, 24)).collect();
    let fresh = sim.scan(3, 16);
    ScanMix {
        history_x: flat(&history),
        history_y: synth_labels(48),
        fresh_x: flat(&fresh),
    }
}

fn bragg_mix(seed: u64) -> ScanMix {
    let sim = BraggSimulator::new(DriftModel::none(), seed);
    let flat = |patches: &[fairdms_datasets::bragg::BraggPatch]| {
        let (x, y) = fairdms_datasets::bragg::to_training_tensors(patches);
        let n = x.shape()[0];
        (x.reshape(&[n, SIDE * SIDE]), y)
    };
    let history: Vec<_> = (0..2).flat_map(|s| sim.scan(s, 24)).collect();
    let (hx, hy) = flat(&history);
    let (fx, _) = flat(&sim.scan(3, 16));
    ScanMix {
        history_x: hx,
        history_y: hy,
        fresh_x: fx,
    }
}

/// Clones a request through the wire codec (the protocol's own clone).
fn wire_clone(req: &Request) -> Request {
    decode_request(&encode_request(req)).expect("canonical request must decode")
}

/// Zeroes wall-clock fields; everything else must match bit-for-bit.
fn normalize(rep: &mut Reply) {
    if let Reply::Updated { report, .. } = rep {
        report.label_secs = 0.0;
        report.train_secs = 0.0;
        report.train_report.wall_secs = 0.0;
    }
}

fn assert_identical(label: &str, solo: ServiceResult, multi: ServiceResult) -> ServiceResult {
    match (solo, multi) {
        (Ok(mut s), Ok(mut m)) => {
            normalize(&mut s);
            normalize(&mut m);
            assert_eq!(
                encode_reply(&s),
                encode_reply(&m),
                "{label}: multi-tenant reply diverges from the solo run"
            );
            Ok(s)
        }
        (Err(s), Err(m)) => {
            assert_eq!(s, m, "{label}: error replies diverge");
            Err(s)
        }
        (s, m) => panic!("{label}: Ok/Err disagreement: solo={s:?} multi={m:?}"),
    }
}

/// One tenant's differential driver: the solo twin (in-process) and the
/// tenant's handle into the shared wire plane, advanced step by step so
/// the test can interleave tenants between steps.
struct TenantRun {
    name: &'static str,
    tenant: TenantId,
    solo: DmsClient,
    solo_srv: ServerHandle,
    remote: PipelinedClient,
    mix: ScanMix,
    pdf: Vec<f64>,
    checkpoint: Vec<u8>,
    zoo_id: usize,
}

impl TenantRun {
    fn run(&mut self, label: &str, req: Request) -> ServiceResult {
        let twin = wire_clone(&req);
        assert_identical(
            &format!("tenant {} ({}) {label}", self.tenant, self.name),
            self.solo.call(req),
            self.remote.call(&twin),
        )
    }

    /// Executes step `i` of the per-tenant scenario. Returns `false` once
    /// the scenario is exhausted.
    fn step(&mut self, i: usize) -> bool {
        let embed_cfg = EmbedTrainConfig {
            epochs: 2,
            batch_size: 32,
            ..EmbedTrainConfig::default()
        };
        match i {
            0 => {
                let err = self.run(
                    "DatasetPdf (untrained)",
                    Request::DatasetPdf {
                        images: self.mix.history_x.clone(),
                    },
                );
                assert_eq!(err.unwrap_err(), ServiceError::NotReady);
            }
            1 => {
                match self.run(
                    "TrainSystem",
                    Request::TrainSystem {
                        images: self.mix.history_x.clone(),
                        embed_cfg,
                    },
                ) {
                    Ok(Reply::SystemTrained { k }) => assert!(k > 0),
                    other => panic!("TrainSystem: {other:?}"),
                }
            }
            2 => {
                self.run(
                    "IngestLabeled",
                    Request::IngestLabeled {
                        images: self.mix.history_x.clone(),
                        labels: self.mix.history_y.clone(),
                        scan: 0,
                    },
                )
                .unwrap();
            }
            3 => {
                match self.run(
                    "DatasetPdf",
                    Request::DatasetPdf {
                        images: self.mix.fresh_x.clone(),
                    },
                ) {
                    Ok(Reply::Pdf(p)) => self.pdf = p,
                    other => panic!("DatasetPdf: {other:?}"),
                }
            }
            4 => {
                self.run(
                    "LookupMatching",
                    Request::LookupMatching {
                        pdf: self.pdf.clone(),
                        count: 8,
                    },
                )
                .unwrap();
                self.run(
                    "Recommend",
                    Request::Recommend {
                        pdf: self.pdf.clone(),
                        top_k: None,
                    },
                )
                .unwrap();
            }
            5 => {
                match self.run(
                    "UpdateModel",
                    Request::UpdateModel {
                        images: self.mix.fresh_x.clone(),
                        scan: 3,
                    },
                ) {
                    Ok(Reply::Updated { checkpoint, .. }) => self.checkpoint = checkpoint,
                    other => panic!("UpdateModel: {other:?}"),
                }
            }
            6 => {
                let checkpoint = std::mem::take(&mut self.checkpoint);
                match self.run(
                    "PublishModel",
                    Request::PublishModel {
                        name: format!("{}-model", self.name),
                        checkpoint,
                        pdf: self.pdf.clone(),
                        scan: 4,
                    },
                ) {
                    Ok(Reply::Published { zoo_id }) => self.zoo_id = zoo_id,
                    other => panic!("PublishModel: {other:?}"),
                }
            }
            7 => {
                self.run(
                    "FetchModel",
                    Request::FetchModel {
                        zoo_id: self.zoo_id,
                    },
                )
                .unwrap();
                match self.run(
                    "Certainty",
                    Request::Certainty {
                        images: self.mix.fresh_x.clone(),
                    },
                ) {
                    Ok(Reply::Certainty(c)) => assert!((0.0..=1.0).contains(&c)),
                    other => panic!("Certainty: {other:?}"),
                }
            }
            _ => return false,
        }
        true
    }
}

/// One tenant's row in the differential: name, wire id, scan-mix builder.
type MixEntry = (&'static str, TenantId, fn(u64) -> ScanMix);

#[test]
fn three_interleaved_tenants_are_bit_identical_to_solo_runs() {
    let mixes: [MixEntry; 3] = [
        ("tomo", 1, tomo_mix),
        ("cookiebox", 2, cookiebox_mix),
        ("bragg", 3, bragg_mix),
    ];

    // The shared service: three tenants, one training pool, one listener.
    let mut builder = MultiDms::builder(1);
    for (_, tenant, _) in &mixes {
        builder = builder.tenant(
            TenantSpec {
                config: server_cfg(),
                ..TenantSpec::new(*tenant)
            },
            trainer_for(1000 + u64::from(*tenant)),
            Box::new(|_| vec![0.5, 0.5]),
        );
    }
    let multi = builder.spawn();
    let net = multi
        .serve_tcp(("127.0.0.1", 0), NetServerConfig::default())
        .expect("bind");
    let addr = net.local_addr().unwrap();

    // One physical connection carries all three tenants' traffic.
    let wire = PipelinedClient::connect_tcp(addr).unwrap();

    let mut runs: Vec<TenantRun> = mixes
        .iter()
        .map(|(name, tenant, mk)| {
            let seed = 1000 + u64::from(*tenant);
            let (solo, solo_srv) = spawn_solo(seed);
            TenantRun {
                name,
                tenant: *tenant,
                solo,
                solo_srv,
                remote: wire.for_tenant(*tenant),
                mix: mk(seed),
                pdf: Vec::new(),
                checkpoint: Vec::new(),
                zoo_id: 0,
            }
        })
        .collect();

    // Interleave: every tenant advances one step before any advances two,
    // so each tenant's training/publication lands *between* the others'
    // requests — exactly the cross-talk the isolation contract forbids.
    let mut step = 0;
    loop {
        let mut progressed = false;
        for run in runs.iter_mut() {
            progressed |= run.step(step);
        }
        if !progressed {
            break;
        }
        step += 1;
    }

    // Per-tenant metrics match the solo twin structurally: same op mix,
    // same counts — no tenant served another tenant's requests.
    for run in runs.iter() {
        let solo_m = match run.solo.call(Request::Metrics) {
            Ok(Reply::Metrics(m)) => m,
            other => panic!("solo metrics: {other:?}"),
        };
        let multi_m = match run.remote.call(&Request::Metrics) {
            Ok(Reply::Metrics(m)) => m,
            other => panic!("multi metrics: {other:?}"),
        };
        for ((ln, lo), (rn, ro)) in solo_m.ops.iter().zip(multi_m.ops.iter()) {
            assert_eq!(ln, rn);
            assert_eq!(
                lo.count, ro.count,
                "tenant {} op {ln} count diverges from solo",
                run.tenant
            );
            assert_eq!(lo.errors, ro.errors);
        }
    }

    // Unknown tenant on the same live socket: answered Invalid, socket
    // stays up and keeps serving registered tenants.
    let ghost = wire.for_tenant(99);
    match ghost.call(&Request::Metrics) {
        Err(ServiceError::Invalid(msg)) => assert!(msg.contains("unknown tenant 99"), "{msg}"),
        other => panic!("unknown tenant must answer Invalid, got {other:?}"),
    }
    assert!(
        !wire.is_closed(),
        "unknown tenant must not kill the connection"
    );
    assert!(runs[0].remote.call(&Request::Metrics).is_ok());

    drop(ghost);
    for run in runs {
        drop(run.remote);
        drop(run.solo);
        run.solo_srv.shutdown();
    }
    drop(wire);
    net.shutdown();
    multi.shutdown();
}
