//! Write-plane liveness under the background training executor
//! (DESIGN.md §7).
//!
//! Two properties the write-plane split exists to provide:
//!
//! 1. **Ingest does not queue behind training.** With a deliberately slow
//!    multi-epoch `UpdateModel` job in flight, concurrent ingest (and
//!    read) requests complete with bounded latency — the mutation actor
//!    only ran the O(ms) bookends of the job.
//! 2. **A newer trigger supersedes the running job.** A second
//!    `UpdateModel` cancels the first at an epoch boundary; the stale job
//!    publishes nothing and its client observes
//!    [`ServiceError::Superseded`], while the superseding job's model is
//!    the only one registered.

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_service::server::{DmsClient, DmsServer, DmsServerConfig, ServerHandle};
use fairdms_service::ServiceError;
use fairdms_tensor::rng::TensorRng;
use fairdms_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SIDE: usize = 8;

fn blob_images(per_mode: usize, n_modes: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seeded(seed);
    let centers = [(2.0f32, 2.0f32), (5.0, 5.0), (2.0, 5.0), (5.0, 2.0)];
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for m in 0..n_modes {
        let (cy, cx) = centers[m % centers.len()];
        for _ in 0..per_mode {
            for y in 0..SIDE {
                for x in 0..SIDE {
                    let r2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                    data.push(8.0 * (-r2 / 2.0).exp() + rng.next_normal_with(0.0, 0.1));
                }
            }
            labels.push(cx / SIDE as f32);
            labels.push(cy / SIDE as f32);
        }
    }
    (
        Tensor::from_vec(data, &[per_mode * n_modes, SIDE * SIDE]),
        Tensor::from_vec(labels, &[per_mode * n_modes, 2]),
    )
}

fn embed_cfg() -> EmbedTrainConfig {
    EmbedTrainConfig {
        epochs: 5,
        batch_size: 16,
        lr: 2e-3,
        ..EmbedTrainConfig::default()
    }
}

/// A server whose `UpdateModel` jobs train for `train_epochs` full epochs
/// (no early stopping), so a job reliably occupies the training executor
/// for a stretch.
fn spawn_server(seed: u64, train_epochs: usize) -> (DmsClient, ServerHandle) {
    let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 32, 8, seed);
    let fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(2),
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = train_epochs;
    tcfg.train.batch_size = 16;
    tcfg.train.patience = 0; // run the full budget
    tcfg.seed = seed;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let cfg = DmsServerConfig {
        auto_retrain: false,
        read_pool_size: 2,
        training_pool_size: 1,
        ..DmsServerConfig::default()
    };
    DmsServer::spawn(trainer, Box::new(|_| vec![0.5, 0.5]), cfg)
}

#[test]
fn ingest_and_reads_stay_live_while_a_model_trains() {
    let (client, handle) = spawn_server(0, 40);
    let (x, y) = blob_images(30, 2, 1);
    client.train_system(x.clone(), embed_cfg()).unwrap();
    client.ingest(x.clone(), y, 0).unwrap();

    let update_done = Arc::new(AtomicBool::new(false));
    let updater = {
        let client = client.clone();
        let done = Arc::clone(&update_done);
        let (x_new, _) = blob_images(40, 2, 2);
        thread::spawn(move || {
            let started = Instant::now();
            let result = client.update_model(x_new, 1);
            let took = started.elapsed();
            done.store(true, Ordering::Release);
            (result, took)
        })
    };

    // Mutate *and* read while the fine-tune occupies the executor. Every
    // round that starts and finishes before the update completes proves
    // the write plane never serialized behind the epoch loop.
    let (probe, probe_y) = blob_images(4, 2, 3);
    let mut writes_during_update = 0usize;
    let mut slowest_write = Duration::ZERO;
    let mut scan = 100;
    while !update_done.load(Ordering::Acquire) {
        let t0 = Instant::now();
        let (count, _) = client.ingest(probe.clone(), probe_y.clone(), scan).unwrap();
        let pdf = client.dataset_pdf(probe.clone()).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(count, 8);
        assert_eq!(pdf.len(), 2);
        if !update_done.load(Ordering::Acquire) {
            writes_during_update += 1;
            slowest_write = slowest_write.max(elapsed);
        }
        scan += 1;
    }
    let (update_result, update_took) = updater.join().unwrap();
    let (_, report) = update_result.expect("un-superseded update must publish");

    assert!(
        writes_during_update >= 3,
        "expected several ingest round-trips during a {update_took:?} update, got {writes_during_update}"
    );
    assert!(
        slowest_write < update_took,
        "an ingest ({slowest_write:?}) should never wait out the whole update ({update_took:?})"
    );

    // The acknowledged model is live, and the executor counters add up.
    let rec = client
        .recommend(client.dataset_pdf(probe).unwrap())
        .unwrap();
    assert_eq!(rec.ranked.len(), 1);
    assert_eq!(rec.ranked[0].0, report.registered_id);
    let m = client.metrics().unwrap();
    assert_eq!(m.training_jobs_started, 1);
    assert_eq!(m.training_jobs_completed, 1);
    assert_eq!(m.training_jobs_superseded, 0);
    // The metrics split can now attribute latency: ingest ran fast (run
    // time) even if it briefly queued, and update_model's run time spans
    // its whole background job.
    let ingest_run = m.op("ingest").unwrap();
    assert!(ingest_run.count >= writes_during_update as u64);
    assert_eq!(
        m.queue_op("ingest").unwrap().count,
        ingest_run.count,
        "every dequeued request records one queue wait"
    );
    assert!(
        m.op("update_model").unwrap().mean() >= m.op("ingest").unwrap().mean(),
        "a multi-epoch training job cannot run faster than an ingest"
    );

    drop(client);
    handle.shutdown();
}

#[test]
fn newer_update_supersedes_the_running_job_at_an_epoch_boundary() {
    const EPOCHS: usize = 60;
    let (client, handle) = spawn_server(10, EPOCHS);
    let (x, y) = blob_images(30, 2, 11);
    client.train_system(x.clone(), embed_cfg()).unwrap();
    client.ingest(x.clone(), y, 0).unwrap();

    // Job A: a full-budget fine-tune; records when its reply arrived.
    let first = {
        let client = client.clone();
        let (xa, _) = blob_images(40, 2, 12);
        thread::spawn(move || {
            let result = client.update_model(xa, 1);
            (result, Instant::now())
        })
    };
    // Wait until A is actually on the executor before superseding it.
    let deadline = Instant::now() + Duration::from_secs(60);
    while client.metrics().unwrap().training_jobs_started < 1 {
        assert!(Instant::now() < deadline, "job A never started");
        thread::yield_now();
    }

    // Job B supersedes A: A is cancelled at its next epoch boundary and
    // must not publish; B trains the same budget and registers normally.
    let (xb, _) = blob_images(40, 2, 13);
    let b_submitted = Instant::now();
    let (_, report_b) = client.update_model(xb.clone(), 2).expect("job B publishes");

    let (result_a, a_replied) = first.join().unwrap();
    let err_a = result_a.expect_err("superseded job must not publish");
    assert_eq!(err_a, ServiceError::Superseded);

    // Epoch-boundary cancellation, not run-to-stale-completion: A's
    // Superseded reply must arrive within a few epochs of B's trigger.
    // Had A run out its remaining budget (~EPOCHS epochs of the same
    // workload B just timed), the gap would be close to B's whole
    // training time.
    let per_epoch = report_b.train_secs / report_b.epochs.max(1) as f64;
    let a_gap = a_replied
        .saturating_duration_since(b_submitted)
        .as_secs_f64();
    assert!(
        a_gap < per_epoch * (EPOCHS as f64 / 4.0) + 1.0,
        "A answered {a_gap:.2}s after being superseded; at ~{per_epoch:.3}s/epoch that is \
         not an epoch-boundary cancellation of its {EPOCHS}-epoch budget"
    );
    assert_eq!(report_b.epochs, EPOCHS, "B runs its configured budget");

    // Only B's model exists: the stale job registered nothing.
    let rec = client.recommend(client.dataset_pdf(xb).unwrap()).unwrap();
    assert_eq!(rec.ranked.len(), 1, "exactly one (the superseding) model");
    assert_eq!(rec.ranked[0].0, report_b.registered_id);

    let m = client.metrics().unwrap();
    assert_eq!(m.training_jobs_started, 2);
    assert_eq!(m.training_jobs_completed, 1);
    assert_eq!(m.training_jobs_superseded, 1);
    // The superseded request still recorded: one update_model error (A),
    // one success (B).
    let um = m.op("update_model").unwrap();
    assert_eq!(um.count, 2);
    assert_eq!(um.errors, 1);

    drop(client);
    handle.shutdown();
}

#[test]
fn serialized_mode_still_trains_before_acknowledging() {
    // training_pool_size: 0 keeps the old actor-serialized contract: the
    // update's reply happens-after registration *and* the training ran on
    // the actor itself (no Superseded errors possible).
    let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 32, 8, 20);
    let fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(2),
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 4;
    tcfg.train.batch_size = 16;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let (client, handle) = DmsServer::spawn(
        trainer,
        Box::new(|_| vec![0.5, 0.5]),
        DmsServerConfig {
            auto_retrain: false,
            training_pool_size: 0,
            ..DmsServerConfig::default()
        },
    );
    let (x, y) = blob_images(20, 2, 21);
    client.train_system(x.clone(), embed_cfg()).unwrap();
    client.ingest(x.clone(), y, 0).unwrap();
    let (x_new, _) = blob_images(10, 2, 22);
    let (_, report) = client.update_model(x_new, 1).unwrap();
    // Inline jobs still tick the executor counters for dashboard parity.
    let m = client.metrics().unwrap();
    assert_eq!(m.training_jobs_started, 1);
    assert_eq!(m.training_jobs_completed, 1);
    let (ckpt, _) = client.fetch(report.registered_id).unwrap();
    assert!(!ckpt.is_empty());
    drop(client);
    handle.shutdown();
}
