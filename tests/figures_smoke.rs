//! Smoke tests for the figure regenerators: every paper figure's harness
//! must run end-to-end at `Scale::Smoke`. This is the repository's
//! guarantee that `figures -- all` cannot bit-rot.

use fairdms_bench::{figures, Scale};

macro_rules! smoke {
    ($name:ident, $fig:expr) => {
        #[test]
        fn $name() {
            figures::run($fig, Scale::Smoke).expect($fig);
        }
    };
}

smoke!(fig2_smokes, "fig2");
smoke!(fig6_smokes, "fig6");
smoke!(fig7_smokes, "fig7");
smoke!(fig8_smokes, "fig8");
smoke!(fig9_smokes, "fig9");
smoke!(fig10_smokes, "fig10");
smoke!(fig11_smokes, "fig11");
smoke!(fig12_smokes, "fig12");
smoke!(fig13_smokes, "fig13");
smoke!(fig14_smokes, "fig14");
smoke!(fig15_smokes, "fig15");
smoke!(fig16_smokes, "fig16");
smoke!(elbow_smokes, "elbow");
smoke!(ablations_smoke, "ablations");
smoke!(scalability_smoke, "scalability");

#[test]
fn unknown_figure_is_an_error() {
    assert!(figures::run("fig99", Scale::Smoke).is_err());
}
