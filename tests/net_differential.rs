//! Differential test for the wire plane (DESIGN.md §13): every `Request`
//! variant sent through [`DmsTcpClient`] must produce a reply
//! **bit-identical** to the same request served by an in-process
//! [`DmsClient`] against an identically-seeded deployment.
//!
//! Two independent server stacks are spawned from the same seed; one is
//! additionally exposed over TCP. The same request sequence (cloned by a
//! wire round-trip, which exercises the request codec on the local path
//! too) drives both, and each reply pair is compared by its encoded
//! bytes after zeroing the only nondeterministic fields — wall-clock
//! seconds in the update report. `Metrics` is compared structurally,
//! since latency histograms legitimately differ.

use fairdms_core::embedding::{ByolEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_datasets::bragg::{to_training_tensors, BraggPatch, BraggSimulator, DriftModel};
use fairdms_service::net::codec::{decode_request, encode_reply, encode_request};
use fairdms_service::net::{DmsTcpClient, NetServer, NetServerConfig};
use fairdms_service::server::{DmsClient, DmsServer, DmsServerConfig, ServerHandle};
use fairdms_service::{Reply, Request, ServiceError, ServiceResult};
use fairdms_tensor::Tensor;

const SIDE: usize = 15;

fn flat(patches: &[BraggPatch]) -> (Tensor, Tensor) {
    let (x4, y) = to_training_tensors(patches);
    let n = x4.shape()[0];
    (x4.reshape(&[n, SIDE * SIDE]), y)
}

fn spawn_deployment(seed: u64) -> (DmsClient, ServerHandle) {
    let fairds = FairDS::in_memory(
        Box::new(ByolEmbedder::new(SIDE, 64, 16, seed)),
        FairDsConfig {
            k: Some(4),
            seed,
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 2;
    tcfg.seed = seed;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let cfg = DmsServerConfig {
        auto_retrain: false,
        read_pool_size: 1,
        ..DmsServerConfig::default()
    };
    DmsServer::spawn(trainer, Box::new(|_| vec![0.5, 0.5]), cfg)
}

/// Clones a request by round-tripping it through the wire codec — the
/// only clone the protocol itself guarantees is faithful.
fn wire_clone(req: &Request) -> Request {
    decode_request(&encode_request(req)).expect("canonical request must decode")
}

/// Zeroes the wall-clock fields a reply may carry; everything else must
/// match bit-for-bit.
fn normalize(rep: &mut Reply) {
    if let Reply::Updated { report, .. } = rep {
        report.label_secs = 0.0;
        report.train_secs = 0.0;
        report.train_report.wall_secs = 0.0;
    }
}

/// Asserts two service results are wire-identical (modulo wall clock).
fn assert_identical(label: &str, local: ServiceResult, remote: ServiceResult) -> ServiceResult {
    match (local, remote) {
        (Ok(mut l), Ok(mut r)) => {
            normalize(&mut l);
            normalize(&mut r);
            assert_eq!(
                encode_reply(&l),
                encode_reply(&r),
                "{label}: TCP reply bytes diverge from in-process reply"
            );
            Ok(l)
        }
        (Err(l), Err(r)) => {
            assert_eq!(l, r, "{label}: error replies diverge");
            Err(l)
        }
        (l, r) => panic!("{label}: Ok/Err disagreement: local={l:?} remote={r:?}"),
    }
}

#[test]
fn every_request_variant_is_bit_identical_over_tcp() {
    let (local, local_srv) = spawn_deployment(42);
    let (backing, backing_srv) = spawn_deployment(42);
    let net = NetServer::serve_tcp(
        backing.clone(),
        ("127.0.0.1", 0),
        NetServerConfig::default(),
    )
    .expect("bind");
    let remote = DmsTcpClient::connect(net.local_addr().unwrap()).unwrap();

    let run = |label: &str, req: Request| -> ServiceResult {
        let twin = wire_clone(&req);
        assert_identical(label, local.call(req), remote.call(&twin))
    };

    // Shared deterministic data.
    let sim = BraggSimulator::new(DriftModel::none(), 42);
    let history: Vec<BraggPatch> = (0..2).flat_map(|s| sim.scan(s, 40)).collect();
    let (hx, hy) = flat(&history);
    let (x1, _) = flat(&sim.scan(3, 24));
    let embed_cfg = EmbedTrainConfig {
        epochs: 2,
        batch_size: 32,
        ..EmbedTrainConfig::default()
    };

    // Error path first: both untrained deployments refuse routed reads.
    let err = run(
        "DatasetPdf (untrained)",
        Request::DatasetPdf { images: hx.clone() },
    );
    assert_eq!(err.unwrap_err(), ServiceError::NotReady);

    // 1. TrainSystem — identical seeds must select the same K.
    let k = match run(
        "TrainSystem",
        Request::TrainSystem {
            images: hx.clone(),
            embed_cfg,
        },
    ) {
        Ok(Reply::SystemTrained { k }) => k,
        other => panic!("TrainSystem: {other:?}"),
    };
    assert!(k > 0);

    // 2. IngestLabeled.
    let ingested = run(
        "IngestLabeled",
        Request::IngestLabeled {
            images: hx.clone(),
            labels: hy.clone(),
            scan: 0,
        },
    );
    assert!(matches!(ingested, Ok(Reply::Ingested { count: 80, .. })));

    // 3. DatasetPdf — also supplies the pdf used by the lookup/recommend
    //    requests below.
    let pdf = match run("DatasetPdf", Request::DatasetPdf { images: x1.clone() }) {
        Ok(Reply::Pdf(p)) => p,
        other => panic!("DatasetPdf: {other:?}"),
    };
    assert_eq!(pdf.len(), k);

    // 4. PseudoLabel.
    run(
        "PseudoLabel",
        Request::PseudoLabel {
            images: x1.clone(),
            threshold: 0.5,
        },
    )
    .unwrap();

    // 5. LookupMatching.
    run(
        "LookupMatching",
        Request::LookupMatching {
            pdf: pdf.clone(),
            count: 8,
        },
    )
    .unwrap();

    // 6. Recommend against an empty zoo, both shapes of top_k.
    run(
        "Recommend (full)",
        Request::Recommend {
            pdf: pdf.clone(),
            top_k: None,
        },
    )
    .unwrap();
    run(
        "Recommend (top-1)",
        Request::Recommend {
            pdf: pdf.clone(),
            top_k: Some(1),
        },
    )
    .unwrap();

    // 7. UpdateModel — full pseudo-label → train → register pipeline.
    //    Checkpoint bytes themselves must agree, which transitively pins
    //    the whole training path.
    let checkpoint = match run(
        "UpdateModel",
        Request::UpdateModel {
            images: x1.clone(),
            scan: 3,
        },
    ) {
        Ok(Reply::Updated { checkpoint, report }) => {
            assert_eq!(report.registered_id, 0);
            checkpoint
        }
        other => panic!("UpdateModel: {other:?}"),
    };

    // 8. PublishModel with the agreed checkpoint.
    let zoo_id = match run(
        "PublishModel",
        Request::PublishModel {
            name: "differential".to_string(),
            checkpoint,
            pdf: pdf.clone(),
            scan: 4,
        },
    ) {
        Ok(Reply::Published { zoo_id }) => zoo_id,
        other => panic!("PublishModel: {other:?}"),
    };

    // 9. FetchModel, hit and miss.
    run("FetchModel", Request::FetchModel { zoo_id }).unwrap();
    let miss = run("FetchModel (miss)", Request::FetchModel { zoo_id: 999 });
    assert_eq!(miss.unwrap_err(), ServiceError::UnknownModel(999));

    // 10. Certainty.
    match run("Certainty", Request::Certainty { images: x1.clone() }) {
        Ok(Reply::Certainty(c)) => assert!((0.0..=1.0).contains(&c)),
        other => panic!("Certainty: {other:?}"),
    }

    // 11. Metrics — latency histograms legitimately differ, so this one
    //     is structural: both sides saw the same request mix.
    let (lm, rm) = match (local.call(Request::Metrics), remote.call(&Request::Metrics)) {
        (Ok(Reply::Metrics(l)), Ok(Reply::Metrics(r))) => (l, r),
        other => panic!("Metrics: {other:?}"),
    };
    for ((lname, lop), (rname, rop)) in lm.ops.iter().zip(rm.ops.iter()) {
        assert_eq!(lname, rname);
        assert_eq!(
            lop.count, rop.count,
            "op {lname} count diverges between the planes"
        );
        assert_eq!(
            lop.errors, rop.errors,
            "op {lname} error count diverges between the planes"
        );
    }
    // The TCP deployment additionally reports its wire counters.
    assert!(rm.net.connections_opened >= 1);
    assert_eq!(rm.net.decode_errors, 0, "no protocol errors on this run");

    drop(remote);
    net.shutdown();
    drop(local);
    drop(backing);
    local_srv.shutdown();
    backing_srv.shutdown();
}
