//! Read/write isolation of the split user plane (DESIGN.md §6).
//!
//! Two properties the refactor exists to provide:
//!
//! 1. **Reads do not queue behind training.** `DatasetPdf`,
//!    `LookupMatching`, and `Recommend` complete while a slow
//!    `UpdateModel` run holds the actor thread.
//! 2. **Snapshot turnover is atomic.** After a certainty-triggered
//!    retrain, readers observe the *new* published snapshot (version
//!    advanced, consistent K), and concurrent readers never observe a
//!    torn view mid-publication.

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_service::server::{DmsClient, DmsServer, DmsServerConfig, ServerHandle};
use fairdms_tensor::rng::TensorRng;
use fairdms_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SIDE: usize = 8;

fn blob_images(per_mode: usize, n_modes: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seeded(seed);
    let centers = [(2.0f32, 2.0f32), (5.0, 5.0), (2.0, 5.0), (5.0, 2.0)];
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for m in 0..n_modes {
        let (cy, cx) = centers[m % centers.len()];
        for _ in 0..per_mode {
            for y in 0..SIDE {
                for x in 0..SIDE {
                    let r2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                    data.push(8.0 * (-r2 / 2.0).exp() + rng.next_normal_with(0.0, 0.1));
                }
            }
            labels.push(cx / SIDE as f32);
            labels.push(cy / SIDE as f32);
        }
    }
    (
        Tensor::from_vec(data, &[per_mode * n_modes, SIDE * SIDE]),
        Tensor::from_vec(labels, &[per_mode * n_modes, 2]),
    )
}

fn embed_cfg() -> EmbedTrainConfig {
    EmbedTrainConfig {
        epochs: 5,
        batch_size: 16,
        lr: 2e-3,
        ..EmbedTrainConfig::default()
    }
}

fn spawn_server(
    seed: u64,
    k: usize,
    auto_retrain: bool,
    train_epochs: usize,
) -> (DmsClient, ServerHandle) {
    let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 32, 8, seed);
    let fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(k),
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = train_epochs;
    tcfg.train.batch_size = 16;
    tcfg.seed = seed;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let cfg = DmsServerConfig {
        auto_retrain,
        retrain_embed_cfg: embed_cfg(),
        read_pool_size: 4,
        ..DmsServerConfig::default()
    };
    DmsServer::spawn(trainer, Box::new(|_| vec![0.5, 0.5]), cfg)
}

#[test]
fn reads_complete_while_update_model_is_in_flight() {
    // Long training budget so UpdateModel occupies the actor for a while.
    let (client, handle) = spawn_server(0, 2, false, 40);
    let (x, y) = blob_images(30, 2, 1);
    client.train_system(x.clone(), embed_cfg()).unwrap();
    client.ingest(x.clone(), y, 0).unwrap();

    let update_done = Arc::new(AtomicBool::new(false));
    let updater = {
        let client = client.clone();
        let done = Arc::clone(&update_done);
        let (x_new, _) = blob_images(40, 2, 2);
        thread::spawn(move || {
            let started = Instant::now();
            client.update_model(x_new, 1).unwrap();
            let took = started.elapsed();
            done.store(true, Ordering::Release);
            took
        })
    };

    // Hammer the read plane while the update occupies the actor. Every
    // read that *starts and finishes* before the update completes proves
    // it never queued behind the actor.
    let (probe, _) = blob_images(5, 2, 3);
    let mut reads_during_update = 0usize;
    let mut slowest_read = Duration::ZERO;
    while !update_done.load(Ordering::Acquire) {
        let t0 = Instant::now();
        let pdf = client.dataset_pdf(probe.clone()).unwrap();
        let docs = client.lookup(pdf.clone(), 4).unwrap();
        let rec = client.recommend(pdf).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(docs.len(), 4);
        if !update_done.load(Ordering::Acquire) {
            // The whole round-trip ran while the actor was busy training.
            reads_during_update += 1;
            slowest_read = slowest_read.max(elapsed);
        }
        // Publish-before-acknowledge: the new model may become visible
        // moments before the updater thread processes its ack, but never
        // more than the one model this update produces.
        assert!(rec.ranked.len() <= 1, "impossible zoo contents {rec:?}");
        // Metrics snapshots bypass every queue: they must also respond
        // while the actor is busy.
        let m = client.metrics().unwrap();
        assert!(m.op("pdf").is_some());
    }
    let update_took = updater.join().unwrap();

    assert!(
        reads_during_update >= 3,
        "expected several read round-trips during a {update_took:?} update, got {reads_during_update}"
    );
    assert!(
        slowest_read < update_took,
        "a read ({slowest_read:?}) should never wait out the whole update ({update_took:?})"
    );

    // After the update is acknowledged the new zoo entry is published.
    let (probe2, _) = blob_images(5, 2, 4);
    let pdf = client.dataset_pdf(probe2).unwrap();
    let rec = client.recommend(pdf).unwrap();
    assert_eq!(rec.ranked.len(), 1, "acknowledged model must be visible");

    drop(client);
    handle.shutdown();
}

#[test]
fn certainty_triggered_retrain_publishes_a_fresh_untorn_snapshot() {
    // k >= 3 so the fuzzy-certainty monitor can actually fire.
    let (client, handle) = spawn_server(10, 3, true, 2);
    let (x, y) = blob_images(30, 3, 11);
    client.train_system(x.clone(), embed_cfg()).unwrap();
    client.ingest(x, y, 0).unwrap();

    let v0 = client
        .current_view()
        .system
        .as_ref()
        .expect("trained")
        .version();

    // Readers hammer the snapshot while the drifted ingest retrains.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let client = client.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let (probe, _) = blob_images(4, 3, 100 + t);
                let mut observed_ks = std::collections::BTreeSet::new();
                while !stop.load(Ordering::Acquire) {
                    let pdf = client.dataset_pdf(probe.clone()).unwrap();
                    // A torn view would produce a PDF whose length matches
                    // no published clustering. K is fixed at 3 in this
                    // fixture, before and after the retrain, so every
                    // answer must be exactly that long.
                    let view = client.current_view();
                    let k_now = view.system.as_ref().unwrap().k();
                    assert_eq!(pdf.len(), k_now, "pdf of impossible length");
                    observed_ks.insert(pdf.len());
                    let c = client.certainty(probe.clone()).unwrap();
                    assert!((0.0..=1.0).contains(&c));
                }
                observed_ks
            })
        })
        .collect();

    // Drifted data: certainty collapses, the monitor fires, and the
    // retrain job lands on the background training executor. The ack
    // carries the *trigger*; installation follows asynchronously after
    // the version fence.
    let noise = TensorRng::seeded(12).uniform(&[60, SIDE * SIDE], -1.0, 1.0);
    let labels = Tensor::from_vec(vec![0.5; 120], &[60, 2]);
    let (_, retrained) = client.ingest(noise, labels, 1).unwrap();
    assert!(retrained, "drifted ingest should trigger the system plane");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let sys = client.current_view().system.clone().expect("still trained");
        if sys.version() > v0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "triggered retrain never published a fresh snapshot (version stuck at {})",
            sys.version()
        );
        thread::yield_now();
    }

    stop.store(true, Ordering::Release);
    for r in readers {
        let ks = r.join().unwrap();
        assert!(
            ks.iter().all(|&k| k == 3),
            "readers observed PDFs inconsistent with every published K: {ks:?}"
        );
    }

    let m = client.metrics().unwrap();
    assert_eq!(m.system_retrains, 1);

    drop(client);
    handle.shutdown();
}
