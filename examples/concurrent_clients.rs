//! The split user plane under load: many clients querying PDFs and model
//! recommendations — and ingesting — while models train.
//!
//! Before the read/write split, every request — including pure reads —
//! serialized through the single server actor, so one `UpdateModel`
//! training run stalled every concurrent reader behind it. And before the
//! *write-plane* split, mutations still did: an ingest submitted while a
//! model fine-tuned waited out the whole epoch loop. This example makes
//! both decouplings visible: it starts a background loop of rapid model
//! updates (each training for a noticeable stretch on the background
//! executor), points a fleet of read-only clients *plus an ingest client*
//! at the service, and prints the latencies observed *while training is
//! in flight* next to how long each training run took.
//!
//! Run with: `cargo run --release --example concurrent_clients`

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_datasets::bragg::{to_training_tensors, BraggSimulator, DriftModel};
use fairdms_service::server::{DmsServer, DmsServerConfig};
use fairdms_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIDE: usize = 15;

fn flat(patches: &[fairdms_datasets::bragg::BraggPatch]) -> (Tensor, Tensor) {
    let (x4, y) = to_training_tensors(patches);
    let n = x4.shape()[0];
    (x4.reshape(&[n, SIDE * SIDE]), y)
}

fn main() {
    println!("== concurrent clients vs. a retraining system plane ==\n");

    // --- Stand the service up and prime it. ------------------------------
    let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 64, 16, 3);
    let fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(10),
            seed: 3,
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 12;
    tcfg.train.batch_size = 32;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let (client, handle) = DmsServer::spawn(
        trainer,
        Box::new(|_| vec![0.5, 0.5]),
        DmsServerConfig {
            auto_retrain: false,
            read_pool_size: 4,
            ..DmsServerConfig::default()
        },
    );

    let sim = BraggSimulator::new(DriftModel::none(), 3);
    let history: Vec<_> = sim
        .series(3, 120)
        .into_iter()
        .flat_map(|(_, p)| p)
        .collect();
    let (hx, hy) = flat(&history);
    let k = client
        .train_system(
            hx.clone(),
            EmbedTrainConfig {
                epochs: 3,
                batch_size: 64,
                lr: 2e-3,
                ..EmbedTrainConfig::default()
            },
        )
        .expect("train_system");
    client.ingest(hx, hy, 0).expect("ingest");
    println!(
        "system plane trained (k = {k}), {} samples in the store\n",
        history.len()
    );

    // --- Background system plane: rapid model updates in a loop. ---------
    let stop = Arc::new(AtomicBool::new(false));
    let training_busy = Arc::new(AtomicBool::new(false));
    let updater = {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        let busy = Arc::clone(&training_busy);
        std::thread::spawn(move || {
            let mut durations = Vec::new();
            let mut scan = 10;
            while !stop.load(Ordering::Acquire) {
                let (ux, _) =
                    flat(&BraggSimulator::new(DriftModel::none(), scan as u64).scan(scan, 80));
                busy.store(true, Ordering::Release);
                let t0 = Instant::now();
                let report = client.update_model(ux, scan).map(|(_, r)| r);
                busy.store(false, Ordering::Release);
                if let Ok(r) = report {
                    durations.push((t0.elapsed(), r.registered_id));
                }
                scan += 1;
            }
            durations
        })
    };

    // --- The ingest client: mutations must not queue behind training. ----
    let ingester = {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        let busy = Arc::clone(&training_busy);
        std::thread::spawn(move || {
            let mut during_training = Vec::new();
            let mut scan = 1000;
            while !stop.load(Ordering::Acquire) {
                let (ix, iy) = flat(&BraggSimulator::new(DriftModel::none(), 90).scan(0, 8));
                let was_busy = busy.load(Ordering::Acquire);
                let t0 = Instant::now();
                client.ingest(ix, iy, scan).expect("ingest");
                if was_busy && busy.load(Ordering::Acquire) {
                    during_training.push(t0.elapsed());
                }
                scan += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            during_training
        })
    };

    // --- The read fleet. ---------------------------------------------------
    let n_clients = 8;
    println!(
        "running {n_clients} read-only clients + 1 ingest client while the trainer loops...\n"
    );
    let readers: Vec<_> = (0..n_clients)
        .map(|t| {
            let client = client.clone();
            let busy = Arc::clone(&training_busy);
            std::thread::spawn(move || {
                let (probe, _) = flat(&BraggSimulator::new(DriftModel::none(), 50 + t).scan(0, 16));
                let mut during_training = Vec::new();
                let mut while_idle = Vec::new();
                for _ in 0..30 {
                    let was_busy = busy.load(Ordering::Acquire);
                    let t0 = Instant::now();
                    let pdf = client.dataset_pdf(probe.clone()).expect("pdf");
                    // Partial ranking: clients that only fine-tune the
                    // best match never pay for sorting the whole zoo.
                    let rec = client
                        .recommend_top_k(pdf.clone(), 3)
                        .expect("recommend_top_k");
                    let docs = client.lookup(pdf, 8).expect("lookup");
                    let elapsed = t0.elapsed();
                    assert_eq!(docs.len(), 8);
                    assert!(rec.ranked.len() <= 3); // frozen zoo snapshot
                    if was_busy && busy.load(Ordering::Acquire) {
                        during_training.push(elapsed);
                    } else {
                        while_idle.push(elapsed);
                    }
                }
                (during_training, while_idle)
            })
        })
        .collect();

    let mut during: Vec<Duration> = Vec::new();
    let mut idle: Vec<Duration> = Vec::new();
    for r in readers {
        let (d, i) = r.join().expect("reader");
        during.extend(d);
        idle.extend(i);
    }
    stop.store(true, Ordering::Release);
    let updates = updater.join().expect("updater");
    let mut ingests_during = ingester.join().expect("ingester");

    // --- Report. -----------------------------------------------------------
    let pct = |lat: &mut Vec<Duration>, q: usize| -> Duration {
        if lat.is_empty() {
            return Duration::ZERO;
        }
        lat.sort_unstable();
        lat[(lat.len() * q / 100).min(lat.len() - 1)]
    };
    println!(
        "model updates completed in the background: {}",
        updates.len()
    );
    for (d, id) in &updates {
        println!("  update -> zoo id {id} (trained in the background for {d:.2?})");
    }
    let (d50, d99) = (pct(&mut during, 50), pct(&mut during, 99));
    let (i50, i99) = (pct(&mut idle, 50), pct(&mut idle, 99));
    println!("\nread round-trips (pdf + recommend + lookup):");
    println!(
        "  while training in flight: {:>4} ops, p50 {d50:.2?}, p99 {d99:.2?}",
        during.len()
    );
    println!(
        "  while actor idle:         {:>4} ops, p50 {i50:.2?}, p99 {i99:.2?}",
        idle.len()
    );
    let (g50, g99) = (pct(&mut ingests_during, 50), pct(&mut ingests_during, 99));
    println!(
        "\ningest round-trips while training in flight: {:>4} ops, p50 {g50:.2?}, p99 {g99:.2?}",
        ingests_during.len()
    );
    println!("\nneither reads nor ingest queued behind training: compare the p99s");
    println!("above with the update durations — the old serialized write plane");
    println!("would have charged a full epoch loop to unlucky writers.");

    let m = client.metrics().expect("metrics");
    println!("\ntotal calls served: {}", m.total_calls());
    println!(
        "training jobs: {} started, {} completed, {} superseded",
        m.training_jobs_started, m.training_jobs_completed, m.training_jobs_superseded
    );
    if let (Some(q), Some(r)) = (m.queue_op("ingest"), m.op("ingest")) {
        println!(
            "ingest attribution: queue-wait mean {:.2?} vs run mean {:.2?}",
            q.mean(),
            r.mean()
        );
    }

    drop(client);
    handle.shutdown();
    println!("server drained and shut down cleanly");
}
