//! Hosting three experiments in one fairDMS service process.
//!
//! The tenant plane (DESIGN.md §14) turns the single-deployment server
//! into a facility: this example replays the paper's three instruments —
//! tomography, CookieBox, and Bragg scans — as three isolated tenants
//! behind **one** TCP listener and **one** shared training pool, using
//! the same `bench::scenario` drift-replay harness the CI fairness bench
//! runs. Each tenant streams routed reads and periodic `UpdateModel`
//! retrains concurrently; the run ends with per-tenant latency summaries
//! and the deficit-scheduled pool's admission counters.
//!
//! Run with: `cargo run --release --example multi_tenant_deployment`

use fairdms_bench::scenario::{
    replay_mix, spawn_scenario_deployment, ScenarioKind, TenantScenario,
};
use fairdms_service::net::NetServerConfig;
use fairdms_service::Request;
use std::time::Duration;

fn p99(lat: &[Duration]) -> Duration {
    if lat.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = lat.to_vec();
    sorted.sort();
    sorted[((sorted.len() * 99) / 100).min(sorted.len() - 1)]
}

fn main() {
    println!("== fairDMS multi-tenant deployment ==\n");

    let scenarios = vec![
        TenantScenario::new(1, ScenarioKind::Tomo, 41),
        TenantScenario::new(2, ScenarioKind::CookieBox, 42),
        TenantScenario::new(3, ScenarioKind::Bragg, 43),
    ];

    println!("spawning 3 tenants behind one listener, 1 shared training worker...");
    let dep = spawn_scenario_deployment(&scenarios, 1, NetServerConfig::default());
    println!("listening on {}\n", dep.addr());

    println!("replaying tomo + cookiebox + bragg scans concurrently...");
    let reports = replay_mix(dep.addr(), &scenarios);
    for r in &reports {
        println!(
            "tenant {} ({:<9}) reads {:>3} (p99 {:>9.2?})  updates {:>2}  busy {:>2}  errors {:>2}  wall {:>8.2?}",
            r.tenant,
            r.kind.label(),
            r.read_latencies.len(),
            p99(&r.read_latencies),
            r.update_latencies.len(),
            r.busy,
            r.errors,
            r.wall
        );
    }

    // Per-tenant metrics stay isolated; a frame for an unknown tenant is
    // answered, not dropped.
    println!();
    for sc in &scenarios {
        let queued = dep.multi.training_jobs_queued(sc.tenant);
        println!(
            "tenant {} training_jobs_queued at quiescence: {queued}",
            sc.tenant
        );
    }
    let unknown = dep.multi.call(99, Request::Metrics);
    println!("request for unknown tenant 99 answers: {unknown:?}");

    let stats = dep.net.counters().snapshot();
    println!(
        "\nwire: {} connections opened, {} frames in, {} frames out, {} decode errors",
        stats.connections_opened, stats.frames_in, stats.frames_out, stats.decode_errors
    );

    dep.shutdown();
    println!("\ndeployment drained cleanly.");
}
