//! The Fig 16 mechanism as a runnable scenario: fuzzy-clustering certainty
//! monitors the embedding+clustering stack across an experiment series;
//! when certainty drops below 80 %, the system plane retrains itself and
//! certainty recovers.
//!
//! ```text
//! cargo run --release --example drift_trigger
//! ```

use fairdms_core::embedding::{ByolEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_datasets::bragg::{to_training_tensors, BraggSimulator, DriftModel};

const SIDE: usize = 15;
const PER_DATASET: usize = 120;

fn flat(
    patches: &[fairdms_datasets::BraggPatch],
) -> (fairdms_tensor::Tensor, fairdms_tensor::Tensor) {
    let (x4, y) = to_training_tensors(patches);
    let n = x4.shape()[0];
    (x4.reshape(&[n, SIDE * SIDE]), y)
}

fn main() {
    let deform_start = 8usize;
    let sim = BraggSimulator::new(
        DriftModel {
            deform_start,
            deform_rate: 0.10,
            config_change: usize::MAX,
        },
        5,
    );
    let embed_cfg = EmbedTrainConfig {
        epochs: 8,
        batch_size: 64,
        lr: 2e-3,
        ..EmbedTrainConfig::default()
    };

    // System plane trained on the first five datasets (as in §III-I).
    let warmup: Vec<_> = (0..5).flat_map(|d| sim.scan(d, PER_DATASET)).collect();
    let (wx, wy) = flat(&warmup);
    let mut fairds = FairDS::in_memory(
        Box::new(ByolEmbedder::new(SIDE, 64, 16, 5)),
        FairDsConfig {
            k: Some(15),
            certainty_threshold: 0.8,
            ..FairDsConfig::default()
        },
    );
    fairds.train_system(&wx, &embed_cfg);
    fairds.ingest_labeled(&wx, &wy, 0);

    println!("deformation begins at dataset {deform_start}; trigger threshold 80%\n");
    println!("{:>7}  {:>10}  action", "dataset", "certainty");
    for d in 5..16 {
        let (x, y) = flat(&sim.scan(d, PER_DATASET));
        let certainty = fairds.certainty(&x);
        if fairds.needs_system_update(&x) {
            fairds.retrain_system(&x, &embed_cfg);
            fairds.ingest_labeled(&x, &y, d);
            let after = fairds.certainty(&x);
            println!(
                "{d:>7}  {:>9.1}%  TRIGGER → retrain embedding+clustering → certainty {:.1}%",
                certainty * 100.0,
                after * 100.0
            );
        } else {
            fairds.ingest_labeled(&x, &y, d);
            println!("{d:>7}  {:>9.1}%  ok", certainty * 100.0);
        }
    }
    println!(
        "\nstore now holds {} samples across the experiment",
        fairds.store().len()
    );
}
