//! A tour of the fairMS model Zoo: register models trained under an
//! evolving experiment, inspect the JSD ranking for a new dataset, and see
//! the distance-threshold policy flip between fine-tune and scratch —
//! orchestrated as a Globus-Flows-style flow with a funcX-style executor.
//!
//! ```text
//! cargo run --release --example model_zoo_tour
//! ```

use fairdms_core::embedding::{ByolEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::{ModelDecision, ModelManager, ModelZoo};
use fairdms_core::models::ArchSpec;
use fairdms_datasets::bragg::{to_training_tensors, BraggSimulator, DriftModel};
use fairdms_flows::{Flow, FuncExecutor, StepOutcome};
use std::sync::Arc;

const SIDE: usize = 15;

fn main() {
    let arch = ArchSpec::BraggNN { patch: SIDE };

    // fairDS over a drifting experiment with a configuration change.
    let sim = BraggSimulator::new(DriftModel::paper_like(usize::MAX - 1, 4), 11);
    let history = sim.scan(0, 300);
    let (h4, hy) = to_training_tensors(&history);
    let n = h4.shape()[0];
    let hx = h4.reshape(&[n, SIDE * SIDE]);
    let mut fairds = FairDS::in_memory(
        Box::new(ByolEmbedder::new(SIDE, 64, 16, 11)),
        FairDsConfig {
            k: Some(15),
            ..FairDsConfig::default()
        },
    );
    fairds.train_system(
        &hx,
        &EmbedTrainConfig {
            epochs: 8,
            batch_size: 64,
            lr: 2e-3,
            ..EmbedTrainConfig::default()
        },
    );
    fairds.ingest_labeled(&hx, &hy, 0);

    // Register one (untrained, for speed) model per scan with its true
    // data PDF — the index is what this example demonstrates.
    let mut zoo = ModelZoo::new();
    for scan in 0..8usize {
        let patches = sim.scan(scan, 200);
        let (x4, _) = to_training_tensors(&patches);
        let m = x4.shape()[0];
        let pdf = fairds.dataset_pdf(&x4.reshape(&[m, SIDE * SIDE]));
        let net = arch.build(scan as u64);
        zoo.add_model(&format!("braggnn-scan{scan}"), arch, &net, pdf, scan);
    }
    println!(
        "zoo holds {} models (scans 0..8; config change at scan 4)\n",
        zoo.len()
    );

    // Rank the zoo for a new dataset from the second phase.
    let query = sim.scan(6, 200);
    let (q4, _) = to_training_tensors(&query);
    let m = q4.shape()[0];
    let q_pdf = fairds.dataset_pdf(&q4.reshape(&[m, SIDE * SIDE]));
    let manager = ModelManager::new(0.5);
    let rec = manager.rank(&zoo, &q_pdf).expect("zoo is non-empty");
    println!("JSD ranking for a scan-6 dataset (phase 2):");
    for (id, d) in &rec.ranked {
        let e = zoo.get(*id).unwrap();
        println!("  {:<18} scan {}  jsd {:.4}", e.name, e.scan, d);
    }
    println!(
        "\nbest = {}, median = {}, worst = {}",
        zoo.get(rec.best().unwrap().0).unwrap().name,
        zoo.get(rec.median().unwrap().0).unwrap().name,
        zoo.get(rec.worst().unwrap().0).unwrap().name
    );

    match manager.decide(&zoo, &q_pdf) {
        ModelDecision::FineTune { zoo_id, divergence } => println!(
            "decision: fine-tune '{}' (jsd {divergence:.4} ≤ threshold {})\n",
            zoo.get(zoo_id).unwrap().name,
            manager.distance_threshold
        ),
        ModelDecision::TrainFromScratch => {
            println!("decision: train from scratch (nothing within threshold)\n")
        }
    }

    // The same decision flow, expressed as a Flow over a funcX-style
    // executor (how the paper wires user-plane functions, §III-C).
    let executor = Arc::new(FuncExecutor::new(4));
    executor.register("jsd_rank", {
        let pdfs: Vec<Vec<f64>> = zoo.entries().iter().map(|e| e.train_pdf.clone()).collect();
        let q = q_pdf.clone();
        move |_args| {
            let best = pdfs
                .iter()
                .enumerate()
                .map(|(i, p)| (i, fairdms_core::jsd::jsd(&q, p)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            Ok(vec![best.0 as f64, best.1])
        }
    });
    let ex = Arc::clone(&executor);
    let flow = Flow::new()
        .step("compute-pdf", &[], |_| {
            Ok(StepOutcome::none().with_output("pdf_ready", 1.0))
        })
        .step("recommend", &["compute-pdf"], move |_| {
            let out = ex.call("jsd_rank", &[])?;
            Ok(StepOutcome::none()
                .with_output("best_id", out[0])
                .with_output("best_jsd", out[1]))
        });
    let report = flow.run().expect("flow runs");
    println!(
        "flow-based recommendation: model #{} at jsd {:.4} (flow took {:.1}ms)",
        report.context["best_id"] as usize,
        report.context["best_jsd"],
        report.total_wall_secs * 1e3
    );
}
