//! Quickstart: the fairDMS loop in ~80 lines.
//!
//! 1. Generate a synthetic HEDM history and train the fairDS system plane
//!    (BYOL embedding + k-means index).
//! 2. Ingest the labeled history into the data store.
//! 3. When a new (unlabeled) scan arrives, let fairDMS pseudo-label it,
//!    pick a foundation model from the Zoo, and fine-tune.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fairdms_core::embedding::{ByolEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_datasets::bragg::{to_training_tensors, BraggSimulator, DriftModel};
use fairdms_datasets::voigt::{fit_peak, FitConfig};

const SIDE: usize = 15;

fn main() {
    // ------------------------------------------------------------------
    // 1. Historical data + system-plane training.
    // ------------------------------------------------------------------
    let sim = BraggSimulator::new(DriftModel::none(), 7);
    let history: Vec<_> = (0..3).flat_map(|s| sim.scan(s, 200)).collect();
    let (x4, y) = to_training_tensors(&history);
    let n = x4.shape()[0];
    let x = x4.reshape(&[n, SIDE * SIDE]);

    let embedder = ByolEmbedder::new(SIDE, 64, 16, 7);
    let mut fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(15),
            ..FairDsConfig::default()
        },
    );
    println!("training fairDS system plane on {n} historical patches…");
    let k = fairds.train_system(
        &x,
        &EmbedTrainConfig {
            epochs: 8,
            batch_size: 64,
            lr: 2e-3,
            ..EmbedTrainConfig::default()
        },
    );
    fairds.ingest_labeled(&x, &y, 0);
    println!(
        "fairDS ready: {k} clusters, {} stored samples\n",
        fairds.store().len()
    );

    // ------------------------------------------------------------------
    // 2. The fairDMS workflow around a BraggNN.
    // ------------------------------------------------------------------
    let mut cfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    cfg.train.epochs = 25;
    let mut trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), cfg);

    // ------------------------------------------------------------------
    // 3. Two model updates: the first trains from scratch (empty Zoo),
    //    the second fine-tunes the registered model.
    // ------------------------------------------------------------------
    for scan in [10usize, 11] {
        let new_patches = sim.scan(scan, 150);
        let (nx4, _) = to_training_tensors(&new_patches);
        let nn = nx4.shape()[0];
        let nx = nx4.reshape(&[nn, SIDE * SIDE]);

        let (_, report) = trainer.update_model(
            &nx,
            |pixels| {
                // Expensive fallback: the conventional pseudo-Voigt fit.
                let fit = fit_peak(pixels, SIDE, &FitConfig::QUICK);
                let (cx, cy) = fit.center();
                let s = (SIDE - 1) as f32;
                vec![cx / s, cy / s]
            },
            scan,
        );

        println!(
            "scan {scan}: {} | labels reused {}/{} | labeling {:.3}s | training {:.2}s ({} epochs) | val loss {:.5}",
            match report.foundation {
                Some(id) => format!("fine-tuned zoo model #{id}"),
                None => "trained from scratch".to_string(),
            },
            report.label_stats.reused,
            report.label_stats.reused + report.label_stats.computed,
            report.label_secs,
            report.train_secs,
            report.epochs,
            report.train_report.final_val_loss(),
        );
    }
    println!(
        "\nzoo now holds {} models — subsequent updates keep accelerating",
        trainer.zoo.len()
    );
}
