//! An end-to-end HEDM experiment in the style of the paper's Fig 1 loop:
//! scans stream in, a BraggNN serves inference, MC-dropout uncertainty and
//! prediction error are monitored per scan, and when degradation is
//! detected (sample deformation), fairDMS updates the model — reusing
//! labels from the data store and fine-tuning a Zoo model instead of
//! re-running the conventional pipeline.
//!
//! ```text
//! cargo run --release --example hedm_experiment
//! ```

use fairdms_core::embedding::{ByolEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::uncertainty::mean_row_distance;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig, TrainStrategy};
use fairdms_datasets::bragg::{to_training_tensors, BraggSimulator, DriftModel};
use fairdms_datasets::voigt::{fit_peak, FitConfig};
use fairdms_nn::layers::Mode;
use fairdms_nn::mc_dropout;

const SIDE: usize = 15;
const PER_SCAN: usize = 150;
const N_SCANS: usize = 14;
const DEFORM_START: usize = 7;

fn flat(
    patches: &[fairdms_datasets::BraggPatch],
) -> (fairdms_tensor::Tensor, fairdms_tensor::Tensor) {
    let (x4, y) = to_training_tensors(patches);
    let n = x4.shape()[0];
    (x4.reshape(&[n, SIDE * SIDE]), y)
}

fn main() {
    let sim = BraggSimulator::new(
        DriftModel {
            deform_start: DEFORM_START,
            deform_rate: 0.07,
            config_change: usize::MAX,
        },
        42,
    );

    // --- Phase 0: commissioning. Train system plane + initial model. ---
    let commissioning: Vec<_> = (0..3).flat_map(|s| sim.scan(s, PER_SCAN)).collect();
    let (cx, cy) = flat(&commissioning);
    let embedder = ByolEmbedder::new(SIDE, 64, 16, 42);
    let mut fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(15),
            ..FairDsConfig::default()
        },
    );
    fairds.train_system(
        &cx,
        &EmbedTrainConfig {
            epochs: 8,
            batch_size: 64,
            lr: 2e-3,
            ..EmbedTrainConfig::default()
        },
    );
    fairds.ingest_labeled(&cx, &cy, 0);

    let mut cfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    cfg.train.epochs = 25;
    let mut trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), cfg);

    let pdf0 = trainer.fairds.dataset_pdf(&cx);
    let (mut model, report, _, _) = trainer.fit_strategy(&cx, &cy, &pdf0, TrainStrategy::Scratch);
    trainer.zoo.add_model(
        "braggnn-commissioning",
        ArchSpec::BraggNN { patch: SIDE },
        &model,
        pdf0,
        0,
    );
    println!(
        "commissioning model trained: val loss {:.5} ({} epochs)\n",
        report.final_val_loss(),
        report.curve.len()
    );
    println!(
        "{:>4}  {:>9}  {:>11}  action",
        "scan", "error_px", "uncertainty"
    );

    // --- Phase 1: the experiment loop. ---
    let px = (SIDE - 1) as f32;
    let error_budget = 0.35f32; // px — the beamline's tolerance
    let mut updates = 0usize;
    for scan in 3..N_SCANS {
        let patches = sim.scan(scan, PER_SCAN);
        let (x, y_true) = flat(&patches);
        let n = x.shape()[0];
        let x4 = x.reshape(&[n, 1, SIDE, SIDE]);

        // Inference + monitoring (error needs ground truth; at a real
        // beamline the proxy is the MC-dropout uncertainty, also shown).
        let pred = model.forward(&x4, Mode::Eval);
        let err = mean_row_distance(&pred, &y_true, px);
        let unc = mc_dropout::predict(&mut model, &x4, 12).mean_uncertainty();

        if err > error_budget {
            let (new_model, rep) = trainer.update_model(
                &x,
                |pixels| {
                    let fit = fit_peak(pixels, SIDE, &FitConfig::QUICK);
                    let (fx, fy) = fit.center();
                    vec![fx / px, fy / px]
                },
                scan,
            );
            model = new_model;
            updates += 1;
            println!(
                "{scan:>4}  {err:>9.3}  {unc:>11.5}  UPDATE: {} | reuse {}/{} | {:.2}s total",
                match rep.foundation {
                    Some(id) => format!("fine-tune #{id}"),
                    None => "scratch".into(),
                },
                rep.label_stats.reused,
                rep.label_stats.reused + rep.label_stats.computed,
                rep.end_to_end_secs(),
            );
        } else {
            println!("{scan:>4}  {err:>9.3}  {unc:>11.5}  serve");
        }
    }
    println!(
        "\nexperiment done: {updates} model updates, zoo size {}, store size {}",
        trainer.zoo.len(),
        trainer.fairds.store().len()
    );
}
