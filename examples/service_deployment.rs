//! Deploying fairDMS as a concurrent service.
//!
//! The paper frames fairDMS as a *service platform* (Figs 3–5): experiment
//! clients hit the user plane (label queries, model recommendations, model
//! updates) while the system plane maintains the embedding/clustering
//! models in the background. This example stands up the
//! [`fairdms_service::DmsServer`], drives it from several concurrent
//! clients, forces a drift event that fires the certainty-triggered
//! system-plane retrain, and prints the server's request metrics.
//!
//! Run with: `cargo run --release --example service_deployment`

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_datasets::bragg::{to_training_tensors, BraggSimulator, DriftModel};
use fairdms_datasets::voigt::{fit_peak, FitConfig};
use fairdms_service::server::{DmsServer, DmsServerConfig};
use fairdms_tensor::Tensor;

const SIDE: usize = 15;

fn flat(patches: &[fairdms_datasets::bragg::BraggPatch]) -> (Tensor, Tensor) {
    let (x4, y) = to_training_tensors(patches);
    let n = x4.shape()[0];
    (x4.reshape(&[n, SIDE * SIDE]), y)
}

fn main() {
    println!("== fairDMS service deployment ==\n");

    // --- Assemble the service state: fairDS + Zoo + policy. -------------
    // The system plane is trained and *calibrated* before deployment:
    // absolute fuzzy certainty depends on K and the embedding geometry, so
    // the trigger threshold is set at the midpoint between measured
    // in-distribution and drifted-baseline certainty instead of a fixed
    // constant.
    let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 64, 16, 7);
    let mut fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(10),
            seed: 7,
            ..FairDsConfig::default()
        },
    );
    let sim = BraggSimulator::new(DriftModel::none(), 7);
    let history: Vec<_> = sim
        .series(3, 150)
        .into_iter()
        .flat_map(|(_, p)| p)
        .collect();
    let (hx, hy) = flat(&history);
    let k = fairds.train_system(
        &hx,
        &EmbedTrainConfig {
            epochs: 4,
            batch_size: 64,
            lr: 2e-3,
            ..EmbedTrainConfig::default()
        },
    );
    let calib_drift_sim = BraggSimulator::new(
        DriftModel {
            deform_start: 0,
            deform_rate: 0.5,
            config_change: usize::MAX,
        },
        12345,
    );
    let (calib_in, _) = flat(&sim.scan_shot(0, 9, 80));
    let (calib_out, _) = flat(&calib_drift_sim.scan(20, 80));
    let c_in = fairds.certainty(&calib_in);
    let c_out = fairds.certainty(&calib_out);
    let threshold = (c_in + c_out) / 2.0;
    fairds.config_mut().certainty_threshold = threshold;
    println!(
        "calibrated trigger: in-dist certainty {c_in:.2}, drifted {c_out:.2} -> threshold {threshold:.2}\n"
    );

    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 10;
    tcfg.train.batch_size = 32;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);

    // The server-side fallback labeler is the conventional pseudo-Voigt fit.
    let px = (SIDE - 1) as f32;
    let labeler = Box::new(move |pixels: &[f32]| {
        let fit = fit_peak(pixels, SIDE, &FitConfig::QUICK);
        let (cx, cy) = fit.center();
        vec![cx / px, cy / px]
    });

    let (client, handle) = DmsServer::spawn(
        trainer,
        labeler,
        DmsServerConfig {
            auto_retrain: true,
            // Only *mutating* requests are monitored since the user-plane
            // split (reads are served from snapshots off the actor), so
            // the cooldown counts ingests/updates, not PDF queries.
            retrain_cooldown: 2,
            retrain_embed_cfg: EmbedTrainConfig {
                epochs: 3,
                batch_size: 64,
                lr: 2e-3,
                ..EmbedTrainConfig::default()
            },
            ..DmsServerConfig::default()
        },
    );

    // --- Prime the store through the service. ----------------------------
    client.ingest(hx, hy, 0).expect("historical ingest");
    println!(
        "system plane trained: k = {k}, store primed with {} samples\n",
        history.len()
    );

    // --- Concurrent user-plane clients. ----------------------------------
    println!("running 4 concurrent clients (PDF + pseudo-label + lookup)...");
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let c = client.clone();
        workers.push(std::thread::spawn(move || {
            let sim = BraggSimulator::new(DriftModel::none(), 100 + t);
            for round in 0..3 {
                let (x, _) = flat(&sim.scan(round, 40));
                let pdf = c.dataset_pdf(x.clone()).expect("pdf");
                let (_labels, stats) = c.pseudo_label(x, f32::NAN).expect("labels");
                let docs = c.lookup(pdf, 16).expect("lookup");
                assert_eq!(docs.len(), 16);
                println!(
                    "  client {t} round {round}: reused {}/{} labels",
                    stats.reused,
                    stats.reused + stats.computed
                );
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    // --- A full model update through the service. ------------------------
    println!("\nrequesting a rapid model update...");
    let (x_new, _) = flat(&sim.scan(5, 120));
    let (ckpt, report) = client.update_model(x_new, 5).expect("update");
    println!(
        "  labeled in {:.3}s ({} reused / {} computed), trained in {:.2}s over {} epochs",
        report.label_secs,
        report.label_stats.reused,
        report.label_stats.computed,
        report.train_secs,
        report.epochs
    );
    println!(
        "  checkpoint: {} bytes, registered as zoo id {}",
        ckpt.len(),
        report.registered_id
    );

    // --- Drift: the certainty monitor fires a system-plane retrain. ------
    println!("\ningesting drifted data (deformed sample)...");
    let drift_sim = BraggSimulator::new(
        DriftModel {
            deform_start: 0,
            deform_rate: 0.5,
            config_change: usize::MAX,
        },
        999,
    );
    let (dx, dy) = flat(&drift_sim.scan(20, 120));
    let (_, retrained) = client.ingest(dx.clone(), dy, 20).expect("drift ingest");
    println!("  certainty trigger fired: {retrained}");
    if retrained {
        // The retrain runs on the background training executor; wait for
        // it to install so the probe below really is post-update.
        while client.metrics().expect("metrics").system_retrains == 0 {
            std::thread::yield_now();
        }
    }
    let certainty = client.certainty(dx).expect("certainty");
    println!("  post-update certainty on the drifted batch: {certainty:.2}");

    // --- Metrics. ---------------------------------------------------------
    let m = client.metrics().expect("metrics");
    println!("\n== server metrics ==");
    println!(
        "{:<14} {:>6} {:>6} {:>12} {:>12}",
        "op", "calls", "errs", "mean", "p99"
    );
    for (name, snap) in &m.ops {
        if snap.count == 0 {
            continue;
        }
        println!(
            "{:<14} {:>6} {:>6} {:>12?} {:>12?}",
            name,
            snap.count,
            snap.errors,
            snap.mean(),
            snap.quantile(0.99)
        );
    }
    println!("system-plane retrains: {}", m.system_retrains);
    println!(
        "training jobs: {} started, {} completed, {} superseded",
        m.training_jobs_started, m.training_jobs_completed, m.training_jobs_superseded
    );
    println!(
        "embed cache: {} hits / {} misses (hit ratio {:.1}%), {} evictions, {} stale-generation",
        m.embed_cache.hits,
        m.embed_cache.misses,
        100.0 * m.embed_cache_hit_ratio(),
        m.embed_cache.evictions,
        m.embed_cache.stale_generation
    );
    println!(
        "read index: {} probes, {} balls pruned, {} candidates scanned",
        m.read_index_probes, m.read_index_balls_pruned, m.read_index_candidates_scanned
    );

    drop(client);
    handle.shutdown();
    println!("\nserver drained and shut down cleanly");
}
