//! CookieBox streaming scenario: train CookieNetAE on simulated
//! time-of-flight histograms, watch the fairDS certainty monitor as the
//! photon line drifts, and compare storage backends for the training
//! reads (the Fig 6–8 stack at example scale).
//!
//! ```text
//! cargo run --release --example cookiebox_stream
//! ```

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::models::ArchSpec;
use fairdms_datasets::cookiebox::{to_training_tensors, CookieBoxSimulator};
use fairdms_datastore::netsim::{paper_backends, SampleStore};
use fairdms_nn::loss::Mse;
use fairdms_nn::optim::Adam;
use fairdms_nn::trainer::{TrainConfig, Trainer};

const SIZE: usize = 32;

fn main() {
    let sim = CookieBoxSimulator::new(SIZE, 3);

    // ------------------------------------------------------------------
    // 1. Train CookieNetAE on the first acquisitions.
    // ------------------------------------------------------------------
    let imgs = sim.scan(0, 96);
    let (x, y) = to_training_tensors(&imgs);
    let n = x.shape()[0];
    let mut net = ArchSpec::CookieNetAE { size: SIZE }.build(3);
    let mut opt = Adam::new(2e-3);
    let report = Trainer::new(TrainConfig {
        epochs: 12,
        batch_size: 16,
        ..TrainConfig::default()
    })
    .fit(
        &mut net,
        &mut opt,
        &Mse,
        &x.slice_rows(16, n),
        &y.slice_rows(16, n),
        &x.slice_rows(0, 16),
        &y.slice_rows(0, 16),
    );
    println!(
        "CookieNetAE trained: val loss {:.6} after {} epochs\n",
        report.final_val_loss(),
        report.curve.len()
    );

    // ------------------------------------------------------------------
    // 2. fairDS drift monitoring across the stream.
    // ------------------------------------------------------------------
    let embedder = AutoencoderEmbedder::new(SIZE * SIZE, 64, 16, 3);
    let mut fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(8),
            ..FairDsConfig::default()
        },
    );
    let x_flat = x.reshape(&[n, SIZE * SIZE]);
    fairds.train_system(
        &x_flat,
        &EmbedTrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 2e-3,
            ..EmbedTrainConfig::default()
        },
    );
    println!("{:>5}  {:>10}  status", "scan", "certainty");
    for scan in (0..100).step_by(20) {
        let stream = sim.scan(scan, 32);
        let (sx, _) = to_training_tensors(&stream);
        let m = sx.shape()[0];
        let c = fairds.certainty(&sx.reshape(&[m, SIZE * SIZE]));
        println!(
            "{scan:>5}  {:>9.1}%  {}",
            c * 100.0,
            if fairds.needs_system_update(&sx.reshape(&[m, SIZE * SIZE])) {
                "UPDATE system plane"
            } else {
                "ok"
            }
        );
    }

    // ------------------------------------------------------------------
    // 3. Storage backends: what a training epoch pays per sample.
    // ------------------------------------------------------------------
    println!(
        "\nstorage backends ({} samples of {SIZE}x{SIZE} CookieBox data):",
        32
    );
    for store in paper_backends() {
        let ids: Vec<_> = sim
            .scan(0, 32)
            .iter()
            .map(|img| store.put(&img.to_document()))
            .collect();
        let mut total = 0.0;
        for &id in &ids {
            let (_, t) = store.fetch(id).unwrap();
            total += t.total_secs();
        }
        println!(
            "  {:>7}: mean fetch {:>9.1}us, payload {:>7} B",
            store.label(),
            total / ids.len() as f64 * 1e6,
            store.mean_payload_bytes()
        );
    }
}
