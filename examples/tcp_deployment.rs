//! Deploying fairDMS behind a real TCP endpoint.
//!
//! `service_deployment.rs` drives the server through in-process clients;
//! this example puts the wire plane (DESIGN.md §13) in front of the same
//! stack: a [`fairdms_service::net::NetServer`] listens on a loopback
//! port, a [`fairdms_service::net::DmsTcpClient`] talks to it with the
//! strict request-response pattern, a
//! [`fairdms_service::net::PipelinedClient`] pushes a pipelined burst
//! down one socket, and the run ends with the server's connection/frame
//! counters — the new `net` section of the metrics snapshot.
//!
//! Run with: `cargo run --release --example tcp_deployment`

use fairdms_core::embedding::{AutoencoderEmbedder, EmbedTrainConfig};
use fairdms_core::fairds::{FairDS, FairDsConfig};
use fairdms_core::fairms::ModelManager;
use fairdms_core::models::ArchSpec;
use fairdms_core::workflow::{RapidTrainer, RapidTrainerConfig};
use fairdms_service::net::{DmsTcpClient, NetServer, NetServerConfig, PipelinedClient};
use fairdms_service::server::{DmsServer, DmsServerConfig};
use fairdms_service::Request;
use fairdms_tensor::rng::TensorRng;
use fairdms_tensor::Tensor;

const SIDE: usize = 8;

fn blob_images(n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seeded(seed);
    let centers = [(2.0f32, 2.0f32), (5.0, 5.0)];
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let (cy, cx) = centers[i % centers.len()];
        for y in 0..SIDE {
            for x in 0..SIDE {
                let r2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                data.push(8.0 * (-r2 / 2.0).exp() + rng.next_normal_with(0.0, 0.1));
            }
        }
        labels.push(cx / SIDE as f32);
        labels.push(cy / SIDE as f32);
    }
    (
        Tensor::from_vec(data, &[n, SIDE * SIDE]),
        Tensor::from_vec(labels, &[n, 2]),
    )
}

fn main() {
    println!("== fairDMS TCP deployment ==\n");

    // --- Service stack: train a small system plane, prime the store. ----
    let embedder = AutoencoderEmbedder::new(SIDE * SIDE, 32, 8, 7);
    let fairds = FairDS::in_memory(
        Box::new(embedder),
        FairDsConfig {
            k: Some(2),
            seed: 7,
            ..FairDsConfig::default()
        },
    );
    let mut tcfg = RapidTrainerConfig::new(ArchSpec::BraggNN { patch: SIDE }, SIDE);
    tcfg.train.epochs = 2;
    tcfg.seed = 7;
    let trainer = RapidTrainer::new(fairds, ModelManager::new(0.9), tcfg);
    let (client, server) = DmsServer::spawn(
        trainer,
        Box::new(|_| vec![0.5, 0.5]),
        DmsServerConfig {
            auto_retrain: false,
            read_pool_size: 2,
            ..DmsServerConfig::default()
        },
    );
    let (x, y) = blob_images(48, 11);
    let k = client
        .train_system(
            x.clone(),
            EmbedTrainConfig {
                epochs: 3,
                batch_size: 16,
                ..EmbedTrainConfig::default()
            },
        )
        .expect("system training");
    client.ingest(x, y, 0).expect("prime store");
    println!("system plane trained: K = {k}, store primed with 48 documents");

    // --- Wire plane: listen on a loopback port. -------------------------
    let net = NetServer::serve_tcp(client.clone(), ("127.0.0.1", 0), NetServerConfig::default())
        .expect("bind wire plane");
    let addr = net.local_addr().expect("tcp address");
    println!("wire plane listening on {addr}\n");

    // --- Strict request-response over TCP. ------------------------------
    let tcp = DmsTcpClient::connect(addr).expect("connect");
    let pdf = tcp
        .dataset_pdf(blob_images(8, 12).0)
        .expect("dataset_pdf over TCP");
    println!("dataset_pdf over TCP: {pdf:?}");
    let docs = tcp.lookup(pdf.clone(), 3).expect("lookup over TCP");
    println!("lookup_matching over TCP: {} documents", docs.len());

    // --- A pipelined burst down one socket. -----------------------------
    let pipe = PipelinedClient::connect_tcp(addr).expect("connect pipelined");
    let pendings: Vec<_> = (0..64)
        .map(|_| {
            pipe.submit(&Request::LookupMatching {
                pdf: pdf.clone(),
                count: 1,
            })
        })
        .collect();
    let answered = pendings
        .into_iter()
        .map(|p| p.wait())
        .filter(Result::is_ok)
        .count();
    println!("pipelined burst: 64 submitted, {answered} answered in order\n");

    // --- The wire plane's own metrics. ----------------------------------
    let snap = tcp.metrics().expect("metrics over TCP");
    let n = &snap.net;
    println!("connection/frame counters (MetricsSnapshot.net):");
    println!("  connections opened        {:>8}", n.connections_opened);
    println!("  connections active        {:>8}", n.connections_active);
    println!(
        "  busy rejections           {:>8}",
        n.connections_busy_rejected
    );
    println!("  frames in                 {:>8}", n.frames_in);
    println!("  frames out                {:>8}", n.frames_out);
    println!("  bytes in                  {:>8}", n.bytes_in);
    println!("  bytes out                 {:>8}", n.bytes_out);
    println!("  decode errors             {:>8}", n.decode_errors);
    println!(
        "  drains (graceful/abrupt)  {:>4}/{:<4}",
        n.drains_graceful, n.drains_abrupt
    );

    // --- Graceful drain: all listeners close, in-flight work answered. --
    drop(tcp);
    drop(pipe);
    net.shutdown();
    let after = client.metrics().expect("metrics").net;
    println!(
        "\nafter drain: {} active connections, {} graceful / {} abrupt closes",
        after.connections_active, after.drains_graceful, after.drains_abrupt
    );
    drop(client);
    server.shutdown();
}
