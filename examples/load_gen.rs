//! Kilo-client load generator for the wire plane (DESIGN.md §13).
//!
//! Spawns a trained fairDMS deployment behind a loopback TCP listener,
//! then drives it with `CONNS` concurrent pipelined clients pushing a
//! configurable read/write mix, and prints the latency distribution,
//! throughput, and the server's connection/frame counters. This is the
//! same harness `benches/net_plane.rs` uses for the CI-gated pipelining
//! and kilo-client experiments, exposed as a knob-turning CLI.
//!
//! Run with: `cargo run --release --example load_gen -- [conns] [reqs] [window] [read_fraction]`
//!
//! e.g. `cargo run --release --example load_gen -- 1000 8 4 0.9`

use fairdms_bench::netload::{run_load, spawn_wire_deployment, LoadConfig, ReadKind};
use fairdms_service::net::NetServerConfig;

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = LoadConfig {
        connections: arg(1, 256),
        requests_per_connection: arg(2, 16),
        window: arg(3, 16),
        read_fraction: arg(4, 0.9f64),
        read_kind: ReadKind::RoutedLookup,
        seed: 1,
    };
    println!(
        "== fairDMS load generator: {} connections x {} requests, window {}, {:.0}% reads ==\n",
        cfg.connections,
        cfg.requests_per_connection,
        cfg.window,
        cfg.read_fraction * 100.0
    );

    println!("training deployment + binding wire plane ...");
    let dep = spawn_wire_deployment(1, NetServerConfig::default());
    println!("listening on {}\n", dep.addr());

    let load = run_load(dep.addr(), &cfg);
    let s = load.summary("load_gen");

    println!("requests   {:>10}", load.requests);
    println!("  ok       {:>10}", load.ok);
    println!("  svc err  {:>10}", load.service_errors);
    println!("  proto err{:>10}", load.protocol_errors);
    println!("wall       {:>10.2?}", load.wall);
    println!("throughput {:>10.0} req/s", load.throughput());
    println!(
        "latency    p50 {:?}  p99 {:?}  mean {:?}",
        s.p50, s.p99, s.mean
    );

    let stats = dep.net.counters().snapshot();
    println!("\nserver counters:");
    println!(
        "  connections opened {:>8}  busy-rejected {:>4}",
        stats.connections_opened, stats.connections_busy_rejected
    );
    println!(
        "  frames in/out      {:>8} / {:<8}",
        stats.frames_in, stats.frames_out
    );
    println!(
        "  bytes  in/out      {:>8} / {:<8}",
        stats.bytes_in, stats.bytes_out
    );
    println!("  decode errors      {:>8}", stats.decode_errors);

    dep.shutdown();
}
