//! # fairdms-suite
//!
//! Umbrella crate for the fairDMS reproduction (Ali et al., "fairDMS:
//! Rapid Model Training by Data and Model Reuse", IEEE CLUSTER 2022).
//!
//! This crate re-exports the workspace members under stable names and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`). Start with `examples/quickstart.rs`:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The per-crate documentation is the reference:
//!
//! * [`core`] — fairDS + fairMS + the rapid-training workflow,
//! * [`nn`] — the neural-network substrate,
//! * [`tensor`] — tensors and parallel kernels,
//! * [`clustering`] — k-means / elbow / fuzzy memberships,
//! * [`datastore`] — document store, codecs, link models,
//! * [`dataloader`] — loader + training-pipeline simulator,
//! * [`datasets`] — synthetic instruments and the pseudo-Voigt labeler,
//! * [`flows`] — orchestration (flows / executor / transfers),
//! * [`service`] — the concurrent service deployment (DmsServer/DmsClient).
#![forbid(unsafe_code)]

pub use fairdms_clustering as clustering;
pub use fairdms_core as core;
pub use fairdms_dataloader as dataloader;
pub use fairdms_datasets as datasets;
pub use fairdms_datastore as datastore;
pub use fairdms_flows as flows;
pub use fairdms_nn as nn;
pub use fairdms_service as service;
pub use fairdms_tensor as tensor;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        // Touch one item per re-exported crate so the wiring is checked.
        let _ = crate::tensor::Tensor::zeros(&[1]);
        let _ = crate::clustering::KMeansConfig::new(2);
        let _ = crate::datastore::Document::new();
        let _ = crate::core::jsd::jsd(&[0.5, 0.5], &[0.5, 0.5]);
        let _ = crate::flows::TransferService::new();
        let _ = crate::dataloader::DataLoaderConfig::default();
        let _ = crate::datasets::voigt::FitConfig::QUICK;
        let _ = crate::nn::prelude::TrainConfig::default();
        let _ = crate::service::DmsServerConfig::default();
    }
}
